//! L7 — determinism taint for RNG seeds.
//!
//! The trillion-CRP replay (PR 7) is checkpoint-resumable only because
//! every RNG stream in a result crate derives from one master seed: a
//! named seed constant, the CLI `--seed`, or a splitmix64-derived lane.
//! An RNG constructed from a stray literal, or re-seeded identically
//! inside a loop, silently decorrelates (or worse, *correlates*) streams
//! without failing any test — the bit-identity proptests compare two runs
//! of the same wrong stream.
//!
//! The pass walks every RNG construction site (`seed_from_u64(…)`,
//! `from_seed(…)`) in result-crate non-test code and classifies the seed
//! expression:
//!
//! - **literal seed** — the argument is a bare numeric literal: flagged.
//!   Named constants exist precisely so a seed has provenance and a grep
//!   anchor; tests (`#[cfg(test)]`, `tests/` paths) are exempt, literal
//!   seeds there are idiomatic.
//! - **untraceable seed** — the argument mentions no seed-ish identifier
//!   (no `seed`/`SEED`, `lane`, `splitmix`, `derive`, `mix`, `entropy`
//!   fragment, no workspace seed constant): flagged.
//! - **loop-invariant reseed** — the construction sits inside a loop and
//!   the argument neither depends on any identifier bound by an enclosing
//!   loop head nor calls a derivation function: every iteration replays
//!   the same stream. Flagged; a deliberate replay earns an
//!   `// puf-lint: allow(L7): <why>` annotation.

use crate::lexer::Lexed;
use crate::parser::{Items, TokKind, Token};
use std::collections::BTreeSet;

/// RNG construction entry points whose first argument is a seed.
const SEED_SINKS: &[&str] = &["seed_from_u64", "from_seed"];

/// Identifier fragments that mark a seed expression as traceable.
const SEEDISH_FRAGMENTS: &[&str] = &["seed", "lane", "splitmix", "derive", "mix"];

/// Function-call identifiers that count as lane derivations (a loop may
/// re-seed through these: the call varies the stream).
const DERIVE_CALLS: &[&str] = &["splitmix", "derive", "mix", "lane", "child"];

/// One L7 finding: `(line, message)`.
pub type TaintFinding = (usize, String);

/// Runs the taint pass over one file's token stream and item table.
/// `test_lines` are exempt (1-based); the caller restricts the pass to
/// result-crate files.
pub fn seed_taint(
    lexed: &Lexed,
    toks: &[Token],
    items: &Items,
    test_lines: &BTreeSet<usize>,
    out: &mut Vec<TaintFinding>,
) {
    let _ = lexed;
    let seed_consts: BTreeSet<&str> = items
        .consts
        .iter()
        .filter(|c| c.name.to_ascii_lowercase().contains("seed"))
        .map(|c| c.name.as_str())
        .collect();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !SEED_SINKS.contains(&t.text.as_str()) {
            continue;
        }
        if toks.get(i + 1).is_none_or(|n| n.text != "(") {
            continue; // a mention, not a call (e.g. `use rand::SeedableRng`)
        }
        if test_lines.contains(&t.line) {
            continue;
        }
        let arg_end = balanced_end(toks, i + 1);
        let args = &toks[i + 2..arg_end];
        if args.is_empty() {
            continue;
        }
        classify(t.line, &t.text, args, items, &seed_consts, out);
    }
}

/// Index of the token closing the paren opened at `toks[open]` (or
/// `toks.len()`).
fn balanced_end(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn classify(
    line: usize,
    sink: &str,
    args: &[Token],
    items: &Items,
    seed_consts: &BTreeSet<&str>,
    out: &mut Vec<TaintFinding>,
) {
    let idents: Vec<&Token> = args.iter().filter(|t| t.kind == TokKind::Ident).collect();
    let numbers: Vec<&Token> = args.iter().filter(|t| t.kind == TokKind::Number).collect();

    // Bare literal: only number tokens (allowing `u64` suffixes parsed as
    // part of the number token and `_` separators inside it).
    if idents.is_empty() && !numbers.is_empty() {
        out.push((
            line,
            format!(
                "literal seed in `{sink}({}…)`: seeds must trace to a named \
                 seed constant, the CLI `--seed`, or a splitmix-derived lane",
                numbers[0].text
            ),
        ));
        return;
    }

    let seedish = |t: &Token| {
        let lower = t.text.to_ascii_lowercase();
        SEEDISH_FRAGMENTS.iter().any(|f| lower.contains(f)) || seed_consts.contains(t.text.as_str())
    };
    if !idents.iter().any(|t| seedish(t)) {
        let shown: Vec<&str> = idents.iter().map(|t| t.text.as_str()).take(4).collect();
        out.push((
            line,
            format!(
                "untraceable seed in `{sink}({}…)`: no identifier in the seed \
                 expression names a seed, lane, or derivation",
                shown.join(" ")
            ),
        ));
        return;
    }

    // Loop-invariant reseed: inside a loop, seed expression independent of
    // every enclosing loop binding and free of derivation calls.
    let enclosing: Vec<_> = items.loops.iter().filter(|l| l.contains(line)).collect();
    if enclosing.is_empty() {
        return;
    }
    let derives = idents.iter().any(|t| {
        let lower = t.text.to_ascii_lowercase();
        DERIVE_CALLS.iter().any(|f| {
            lower.contains(f) && {
                // Must actually be called, not just mentioned.
                args.iter()
                    .zip(args.iter().skip(1))
                    .any(|(a, b)| a.text == t.text && b.text == "(")
            }
        })
    });
    if derives {
        return;
    }
    let loop_bound: BTreeSet<&str> = enclosing
        .iter()
        .flat_map(|l| l.bindings.iter().map(String::as_str))
        .collect();
    let depends_on_loop = idents.iter().any(|t| loop_bound.contains(t.text.as_str()));
    if !depends_on_loop {
        out.push((
            line,
            format!(
                "loop-invariant reseed in `{sink}(…)`: every iteration replays \
                 the same stream; derive a per-iteration lane (splitmix) or \
                 hoist the RNG out of the loop"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::{parse_items, tokenize};

    fn findings(src: &str) -> Vec<(usize, String)> {
        let lexed = lex(src);
        let toks = tokenize(&lexed);
        let items = parse_items(&lexed);
        let mut out = Vec::new();
        seed_taint(&lexed, &toks, &items, &BTreeSet::new(), &mut out);
        out
    }

    #[test]
    fn literal_seed_is_flagged() {
        let out = findings("fn f() { let rng = StdRng::seed_from_u64(42); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].1.contains("literal seed"), "{}", out[0].1);
        assert_eq!(out[0].0, 1);
    }

    #[test]
    fn named_seed_param_is_clean() {
        assert!(findings("fn f(seed: u64) { let rng = StdRng::seed_from_u64(seed); }").is_empty());
        assert!(
            findings("fn f(s: S) { let rng = StdRng::seed_from_u64(s.master_seed); }").is_empty()
        );
    }

    #[test]
    fn seed_constant_is_clean() {
        let src = "\
const CALIBRATION_SEED: u64 = 7;
fn f() { let rng = StdRng::seed_from_u64(CALIBRATION_SEED); }
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn untraceable_expression_is_flagged() {
        let out = findings("fn f(x: u64) { let rng = StdRng::seed_from_u64(x * 3 + index); }");
        assert_eq!(out.len(), 1);
        assert!(out[0].1.contains("untraceable seed"), "{}", out[0].1);
    }

    #[test]
    fn splitmix_lane_is_clean_even_in_loops() {
        let src = "\
fn f(seed: u64) {
    for lane in 0..4 {
        let rng = StdRng::seed_from_u64(splitmix64(seed, lane));
    }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn loop_invariant_reseed_is_flagged() {
        let src = "\
fn f(base_seed: u64) {
    for rep in 0..100 {
        let rng = StdRng::seed_from_u64(base_seed);
        run(rep, rng);
    }
}
";
        let out = findings(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, 3);
        assert!(out[0].1.contains("loop-invariant reseed"), "{}", out[0].1);
    }

    #[test]
    fn loop_dependent_seed_is_clean() {
        let src = "\
fn f(base_seed: u64) {
    for rep in 0..100 {
        let rng = StdRng::seed_from_u64(base_seed ^ rep);
    }
}
";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "fn t() { let rng = StdRng::seed_from_u64(42); }";
        let lexed = lex(src);
        let toks = tokenize(&lexed);
        let items = parse_items(&lexed);
        let mut out = Vec::new();
        let test_lines: BTreeSet<usize> = [1].into_iter().collect();
        seed_taint(&lexed, &toks, &items, &test_lines, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn mention_without_call_is_ignored() {
        assert!(findings("use rand::SeedableRng; fn f() { let x = seed_from_u64; }").is_empty());
    }
}
