//! # xtask
//!
//! Workspace static analysis for the xorpuf repo, run as `cargo xtask lint`.
//!
//! The paper's methodology stands on invariants no general-purpose linter
//! checks: the 1T-CRP replay must be seeded-deterministic (soft responses
//! averaged over 100k repeats are only comparable across V/T corners if
//! every run visits the same CRPs), the batched evaluation path must stay
//! bit-identical to the scalar one, and the lone `unsafe` fan-out in
//! `bench::par` must keep its claiming protocol auditable. This crate
//! encodes those invariants as repo-specific lint rules over the workspace
//! sources — zero external dependencies, like `puf-telemetry`.
//!
//! The analysis is layered. Each file is lexed ([`lexer`]) and parsed
//! ([`parser`]) exactly once into a shared token stream and item table;
//! the token-level rules (L0–L5) and the structural rules (L7 taint, L8
//! casts) all read from that single pass. On top, a workspace pass builds
//! the crate/symbol graph ([`symbols`]) from the `Cargo.toml` dependency
//! edges and the `pub use` re-export table, powering the L6 layering and
//! reach rules and the L9 telemetry-name registry. Findings — including
//! suppressed ones and their justifications — serialize to a SARIF-like
//! JSON report ([`report`]) that `scripts/check.sh` gates against the
//! committed `results/LINT_baseline.json`.
//!
//! Two observatory subcommands ride alongside the linter: `cargo xtask
//! bench-diff` ([`benchdiff`]) compares benchmark JSON outputs against the
//! committed baselines and fails on per-metric regressions, and `cargo
//! xtask trace-check` ([`tracecheck`]) structurally validates exported
//! Chrome trace-event JSON. Both parse JSON with the dependency-free
//! [`json`] module.
//!
//! ## Rule catalog
//!
//! | id | rule |
//! |----|------|
//! | L0 | malformed `puf-lint` exemption annotation (missing reason / unknown rule id), and *stale* annotations that no longer suppress anything |
//! | L1 | every `unsafe` block/impl/fn must be justified by a `// SAFETY:` comment |
//! | L2 | every crate root carries `#![deny(unsafe_code)]`; `allow(unsafe_code)` only at allowlisted sites |
//! | L3 | nondeterminism ban in result-producing crates (`thread_rng`, `from_entropy`, `Instant::now`, `SystemTime`, `HashMap`/`HashSet`) |
//! | L4 | no `unwrap`/`expect`/`panic!` family in library code of `core`/`ml`/`protocol`/`silicon` |
//! | L5 | telemetry metric and trace-event names (incl. `trace_span!`/`trace_instant!`) are dotted lowercase `subsystem.verb[.detail]` at registration sites |
//! | L6 | crate layering: `Cargo.toml` edges point strictly down the layer map, and result crates must not reach wall-clock/OS-entropy APIs through local re-exports |
//! | L7 | determinism taint: RNG seeds in result crates trace to a named seed constant, the CLI `--seed`, or a derived lane — no literal or loop-invariant reseeding |
//! | L8 | numeric-kernel safety: no truncating `as` casts or float-to-int conversions in the hot-path kernels without an annotated justification |
//! | L9 | telemetry registry: every registered telemetry/trace name appears in `crates/xtask/registry/telemetry_names.txt`, and every registry entry is used |
//!
//! ## Exemptions
//!
//! A violation that is *intended* must say why, next to the code:
//!
//! ```text
//! // puf-lint: allow(L3): timing guard feeds a telemetry gauge, not results
//! let start = std::time::Instant::now();
//! ```
//!
//! The annotation goes on the offending line (trailing) or the line
//! directly above; `allow-file(L3)` in the first 25 lines exempts a whole
//! file. The reason after the second `:` is mandatory — a reasonless or
//! unknown-rule annotation is itself a violation (L0). Suppression is
//! audited: an annotation that no longer suppresses any finding is flagged
//! as stale (L0), so exemptions cannot outlive the code they excused.
//! `#[cfg(test)]` items and `tests/`/`benches/`/`examples/`/`src/bin`
//! paths are exempt from L3/L4/L7 automatically. The L6 layering findings
//! (anchored in `Cargo.toml`) and the L9 registry-side findings are not
//! suppressible — fix the edge or the registry instead.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchdiff;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod tracecheck;
pub mod walk;

pub use report::{Finding, LintReport};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The telemetry-name registry, relative to the workspace root. One name
/// per line, sorted; `#` starts a comment. Regenerate with
/// `cargo xtask lint --update-registry`.
pub const REGISTRY_REL: &str = "crates/xtask/registry/telemetry_names.txt";

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Malformed, unknown, or stale exemption annotation.
    L0,
    /// `unsafe` without a `// SAFETY:` justification.
    L1,
    /// Missing `#![deny(unsafe_code)]` / non-allowlisted `allow(unsafe_code)`.
    L2,
    /// Nondeterminism source in a result-producing crate.
    L3,
    /// Panic path (`unwrap`/`expect`/`panic!`…) in library code.
    L4,
    /// Telemetry name not dotted lowercase.
    L5,
    /// Crate-layering violation or banned re-export reach.
    L6,
    /// Determinism taint: untraceable, literal, or loop-invariant RNG seed.
    L7,
    /// Unjustified truncating/float `as` cast in a numeric-kernel hot path.
    L8,
    /// Telemetry name missing from (or stale in) the registry.
    L9,
}

impl RuleId {
    /// The short stable id, e.g. `"L3"`.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::L0 => "L0",
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
            RuleId::L6 => "L6",
            RuleId::L7 => "L7",
            RuleId::L8 => "L8",
            RuleId::L9 => "L9",
        }
    }

    /// Parses `"L0"`‥`"L9"`.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "L0" => Some(RuleId::L0),
            "L1" => Some(RuleId::L1),
            "L2" => Some(RuleId::L2),
            "L3" => Some(RuleId::L3),
            "L4" => Some(RuleId::L4),
            "L5" => Some(RuleId::L5),
            "L6" => Some(RuleId::L6),
            "L7" => Some(RuleId::L7),
            "L8" => Some(RuleId::L8),
            "L9" => Some(RuleId::L9),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding, anchored to a workspace-relative path and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one file given its workspace-relative path and contents.
///
/// The path determines rule scope (which crate the file belongs to, whether
/// it is a crate root, a binary, or test code), so fixture tests can probe
/// scoping by passing pretend paths. Runs the file-local rules (L0–L5, L7,
/// L8) and the stale-suppression audit; the workspace rules (L6, L9) need
/// the crate graph and run only in [`analyze_workspace`].
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    rules::lint_source(rel_path, src)
}

/// Lints the whole workspace rooted at `root`; unsuppressed diagnostics,
/// sorted by path and line. Emits `xtask.lint.*` telemetry. The full
/// finding set (including suppressed findings) is in [`analyze_workspace`].
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let report = analyze_workspace(root)?;
    Ok(report.violations().map(Finding::diagnostic).collect())
}

/// Runs the full analysis over the workspace rooted at `root`: one shared
/// lex+parse pass per file, the file-local rules (L0–L5, L7, L8), the
/// workspace-graph rules (L6 layering and reach, L9 registry), and
/// suppression resolution with the stale-annotation audit. Findings are
/// sorted by `(path, line, rule)`. Emits `xtask.lint.*` telemetry with a
/// span per phase.
pub fn analyze_workspace(root: &Path) -> std::io::Result<LintReport> {
    let _span = puf_telemetry::span!("xtask.lint.duration");
    let files = walk::workspace_sources(root)?;
    puf_telemetry::counter!("xtask.lint.files").add(files.len() as u64);

    // Phase 1: lex + tokenize + parse each file exactly once.
    let mut analyses = Vec::with_capacity(files.len());
    {
        let _p = puf_telemetry::span!("xtask.lint.parse");
        for file in &files {
            let src = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(_) => continue, // non-UTF-8 or unreadable: not lintable source
            };
            let rel = rel_slash(root, file);
            analyses.push(rules::FileAnalysis::parse(&rel, &src));
        }
    }

    // Phase 2: file-local rules over the shared pass.
    {
        let _p = puf_telemetry::span!("xtask.lint.rules");
        for fa in &mut analyses {
            fa.run_local_rules();
        }
    }

    // Phase 3: workspace graph — L6 layering off the manifests, L6 reach
    // through the re-export table, L9 registry diff. `direct` findings are
    // anchored outside the analyzed sources (manifests, the registry) and
    // are not suppressible; `extras[i]` joins file i's resolution so its
    // annotations apply.
    let mut direct: Vec<Diagnostic> = Vec::new();
    let mut extras: BTreeMap<usize, Vec<Diagnostic>> = BTreeMap::new();
    {
        let _p = puf_telemetry::span!("xtask.lint.graph");
        let mut graph = symbols::CrateGraph::from_manifests(root);
        for fa in &analyses {
            let ident = symbols::crate_of(&fa.rel)
                .and_then(|short| graph.crates.iter().find(|c| c.short == short))
                .map(|c| c.ident.clone());
            if let Some(ident) = ident {
                graph.record_reexports(&ident, &fa.items);
            }
        }
        for (path, line, message) in graph.layering_violations() {
            direct.push(Diagnostic {
                rule: RuleId::L6,
                path,
                line,
                message,
            });
        }
        for (idx, fa) in analyses.iter().enumerate() {
            if !fa.scope.in_l3 {
                continue;
            }
            let mut out = Vec::new();
            symbols::reach_violations(&graph, &fa.items.uses, &mut out);
            for (line, message) in out {
                extras.entry(idx).or_default().push(Diagnostic {
                    rule: RuleId::L6,
                    path: fa.rel.clone(),
                    line,
                    message,
                });
            }
        }
    }
    registry_diff(root, &analyses, &mut direct, &mut extras);

    // Phase 4: suppression resolution + stale audit, then merge and sort.
    let mut findings: Vec<Finding> = Vec::new();
    let files_scanned = analyses.len();
    let mut telemetry_names: BTreeSet<String> = BTreeSet::new();
    {
        let _p = puf_telemetry::span!("xtask.lint.resolve");
        for (idx, fa) in analyses.into_iter().enumerate() {
            telemetry_names.extend(fa.telemetry_names.iter().map(|(_, n)| n.clone()));
            findings.extend(fa.resolve(extras.remove(&idx).unwrap_or_default()));
        }
    }
    findings.extend(direct.into_iter().map(Finding::violation));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    let report = LintReport {
        files: files_scanned,
        findings,
        telemetry_names: telemetry_names.into_iter().collect(),
    };
    puf_telemetry::counter!("xtask.lint.violations").add(report.violations().count() as u64);
    Ok(report)
}

/// L9: diffs the telemetry names registered in the sources against the
/// committed registry file. Missing-from-registry findings anchor at the
/// name's first registration site (suppressible there); unused registry
/// entries anchor at the registry line itself. A missing registry file
/// with names in the tree yields one finding pointing at
/// `--update-registry`; a missing registry with no names (scratch
/// workspaces) is silent.
fn registry_diff(
    root: &Path,
    analyses: &[rules::FileAnalysis],
    direct: &mut Vec<Diagnostic>,
    extras: &mut BTreeMap<usize, Vec<Diagnostic>>,
) {
    // First registration site of each distinct name, in walk order.
    let mut first_site: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (idx, fa) in analyses.iter().enumerate() {
        for (line, name) in &fa.telemetry_names {
            first_site.entry(name).or_insert((idx, *line));
        }
    }
    let registry_text = std::fs::read_to_string(root.join(REGISTRY_REL)).ok();
    let Some(text) = registry_text else {
        if !first_site.is_empty() {
            direct.push(Diagnostic {
                rule: RuleId::L9,
                path: REGISTRY_REL.to_string(),
                line: 1,
                message: format!(
                    "telemetry name registry is missing but {} name(s) are \
                     registered in the tree; run `cargo xtask lint \
                     --update-registry` to generate it",
                    first_site.len()
                ),
            });
        }
        return;
    };
    let mut registered: BTreeMap<&str, usize> = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let entry = line.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        registered.entry(entry).or_insert(idx + 1);
    }
    for (name, &(idx, line)) in &first_site {
        if !registered.contains_key(name) {
            extras.entry(idx).or_default().push(Diagnostic {
                rule: RuleId::L9,
                path: analyses[idx].rel.clone(),
                line,
                message: format!(
                    "telemetry name `{name}` is not in the registry \
                     ({REGISTRY_REL}); add it — or run `cargo xtask lint \
                     --update-registry` — so dashboards and trace tooling \
                     see a closed namespace"
                ),
            });
        }
    }
    for (name, &line) in &registered {
        if !first_site.contains_key(name) {
            direct.push(Diagnostic {
                rule: RuleId::L9,
                path: REGISTRY_REL.to_string(),
                line,
                message: format!(
                    "registry entry `{name}` matches no telemetry registration \
                     site — remove it (or run `cargo xtask lint --update-registry`)"
                ),
            });
        }
    }
}

/// `file` relative to `root`, `/`-separated regardless of platform.
fn rel_slash(root: &Path, file: &Path) -> String {
    let rel: PathBuf = file.strip_prefix(root).unwrap_or(file).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
