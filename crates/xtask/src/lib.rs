//! # xtask
//!
//! Workspace static analysis for the xorpuf repo, run as `cargo xtask lint`.
//!
//! The paper's methodology stands on invariants no general-purpose linter
//! checks: the 1T-CRP replay must be seeded-deterministic (soft responses
//! averaged over 100k repeats are only comparable across V/T corners if
//! every run visits the same CRPs), the batched evaluation path must stay
//! bit-identical to the scalar one, and the lone `unsafe` fan-out in
//! `bench::par` must keep its claiming protocol auditable. This crate
//! encodes those invariants as repo-specific lint rules over the workspace
//! sources — zero external dependencies, like `puf-telemetry`.
//!
//! Two observatory subcommands ride alongside the linter: `cargo xtask
//! bench-diff` ([`benchdiff`]) compares benchmark JSON outputs against the
//! committed baselines and fails on per-metric regressions, and `cargo
//! xtask trace-check` ([`tracecheck`]) structurally validates exported
//! Chrome trace-event JSON. Both parse JSON with the dependency-free
//! [`json`] module.
//!
//! ## Rule catalog
//!
//! | id | rule |
//! |----|------|
//! | L0 | malformed `puf-lint` exemption annotation (missing reason / unknown rule id) |
//! | L1 | every `unsafe` block/impl/fn must be justified by a `// SAFETY:` comment |
//! | L2 | every crate root carries `#![deny(unsafe_code)]`; `allow(unsafe_code)` only at allowlisted sites |
//! | L3 | nondeterminism ban in result-producing crates (`thread_rng`, `from_entropy`, `Instant::now`, `SystemTime`, `HashMap`/`HashSet`) |
//! | L4 | no `unwrap`/`expect`/`panic!` family in library code of `core`/`ml`/`protocol`/`silicon` |
//! | L5 | telemetry metric and trace-event names (incl. `trace_span!`/`trace_instant!`) are dotted lowercase `subsystem.verb[.detail]` at registration sites |
//!
//! ## Exemptions
//!
//! A violation that is *intended* must say why, next to the code:
//!
//! ```text
//! // puf-lint: allow(L3): timing guard feeds a telemetry gauge, not results
//! let start = std::time::Instant::now();
//! ```
//!
//! The annotation goes on the offending line (trailing) or the line
//! directly above; `allow-file(L3)` in the first 25 lines exempts a whole
//! file. The reason after the second `:` is mandatory — a reasonless or
//! unknown-rule annotation is itself a violation (L0). `#[cfg(test)]`
//! items and `tests/`/`benches/`/`examples/`/`src/bin` paths are exempt
//! from L3/L4 automatically.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benchdiff;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod tracecheck;
pub mod walk;

use std::fmt;
use std::path::{Path, PathBuf};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Malformed or unknown exemption annotation.
    L0,
    /// `unsafe` without a `// SAFETY:` justification.
    L1,
    /// Missing `#![deny(unsafe_code)]` / non-allowlisted `allow(unsafe_code)`.
    L2,
    /// Nondeterminism source in a result-producing crate.
    L3,
    /// Panic path (`unwrap`/`expect`/`panic!`…) in library code.
    L4,
    /// Telemetry name not dotted lowercase.
    L5,
}

impl RuleId {
    /// The short stable id, e.g. `"L3"`.
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::L0 => "L0",
            RuleId::L1 => "L1",
            RuleId::L2 => "L2",
            RuleId::L3 => "L3",
            RuleId::L4 => "L4",
            RuleId::L5 => "L5",
        }
    }

    /// Parses `"L0"`‥`"L5"`.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s.trim() {
            "L0" => Some(RuleId::L0),
            "L1" => Some(RuleId::L1),
            "L2" => Some(RuleId::L2),
            "L3" => Some(RuleId::L3),
            "L4" => Some(RuleId::L4),
            "L5" => Some(RuleId::L5),
            _ => None,
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding, anchored to a workspace-relative path and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Lints one file given its workspace-relative path and contents.
///
/// The path determines rule scope (which crate the file belongs to, whether
/// it is a crate root, a binary, or test code), so fixture tests can probe
/// scoping by passing pretend paths.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    rules::lint_source(rel_path, src)
}

/// Lints the whole workspace rooted at `root`; diagnostics are sorted by
/// path and line. Emits `xtask.lint.*` telemetry.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let _span = puf_telemetry::span!("xtask.lint.duration");
    let files = walk::workspace_sources(root)?;
    puf_telemetry::counter!("xtask.lint.files").add(files.len() as u64);
    let mut diags = Vec::new();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(_) => continue, // non-UTF-8 or unreadable: not lintable source
        };
        let rel = rel_slash(root, file);
        diags.extend(rules::lint_source(&rel, &src));
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    puf_telemetry::counter!("xtask.lint.violations").add(diags.len() as u64);
    Ok(diags)
}

/// `file` relative to `root`, `/`-separated regardless of platform.
fn rel_slash(root: &Path, file: &Path) -> String {
    let rel: PathBuf = file.strip_prefix(root).unwrap_or(file).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
