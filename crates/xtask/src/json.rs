//! Minimal hand-rolled JSON parser — enough for the benchmark outputs
//! (`results/BENCH_*.json`, `results/CHAOS.json`) and Chrome trace-event
//! files the observatory subcommands read. Zero dependencies, like the
//! rest of the crate.
//!
//! Numbers parse to `f64` (the benchmark values are rates, counts and
//! ratios — all within `f64`'s exact-integer range). Object member order
//! is preserved so reports list metrics in file order.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; member order preserved, duplicate keys keep the last.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Flattens every numeric leaf to a `a.b.c` dotted path. Array elements
    /// use their index as a segment. Non-numeric leaves are skipped — the
    /// observatory compares metrics, not labels.
    pub fn flatten_numbers(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        fn walk(v: &Value, prefix: &str, out: &mut Vec<(String, f64)>) {
            match v {
                Value::Number(n) => out.push((prefix.to_string(), *n)),
                Value::Object(members) => {
                    for (k, v) in members {
                        let path = if prefix.is_empty() {
                            k.clone()
                        } else {
                            format!("{prefix}.{k}")
                        };
                        walk(v, &path, out);
                    }
                }
                Value::Array(items) => {
                    for (i, v) in items.iter().enumerate() {
                        let path = if prefix.is_empty() {
                            i.to_string()
                        } else {
                            format!("{prefix}.{i}")
                        };
                        walk(v, &path, out);
                    }
                }
                _ => {}
            }
        }
        walk(self, "", &mut out);
        out
    }
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

/// Parses a complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates degrade to the replacement char —
                            // benchmark files never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged; the input is a &str, so it is valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e2}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.0));
        let b = v.get("b").unwrap().as_array().unwrap();
        assert_eq!(b[0], Value::Bool(true));
        assert_eq!(b[1], Value::Null);
        assert_eq!(b[2].as_str(), Some("x\n"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-250.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn flatten_walks_objects_and_arrays() {
        let v =
            parse(r#"{"a": {"b": 2}, "cells": [{"frr": 0.5}, {"frr": 1.0}], "s": "x"}"#).unwrap();
        assert_eq!(
            v.flatten_numbers(),
            vec![
                ("a.b".to_string(), 2.0),
                ("cells.0.frr".to_string(), 0.5),
                ("cells.1.frr".to_string(), 1.0),
            ]
        );
    }

    #[test]
    fn parses_a_real_bench_file_shape() {
        let doc = r#"{
  "schema": {"version": 1, "git_commit": "abc", "threads": 8, "target_cpu": "native"},
  "crps_per_sec": {"xor10_batched_1t": 7674080}
}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").unwrap().get("threads").unwrap().as_f64(),
            Some(8.0)
        );
        assert_eq!(
            v.get("crps_per_sec")
                .unwrap()
                .get("xor10_batched_1t")
                .unwrap()
                .as_f64(),
            Some(7_674_080.0)
        );
    }
}
