//! The lint rules over lexed and parsed sources.
//!
//! Every token-level rule works on the masked `code` of a
//! [`crate::lexer::Line`] — comments and string/char literals are already
//! blanked out — so doc examples and message strings can never fire a
//! rule, while comment text and literal contents remain available where a
//! rule needs them (`// SAFETY:` for L1, metric names for L5, exemption
//! annotations). The structural rules (L7 determinism taint, L8 numeric
//! casts) additionally consume the shared token stream and item table of
//! [`crate::parser`] — each file is lexed and parsed exactly once
//! ([`FileAnalysis`]), and every rule reads from that single pass.
//!
//! Rules emit *candidates* unconditionally; suppression is resolved
//! centrally ([`FileAnalysis::resolve`]) so that every exemption
//! annotation's effect is observable: a suppressed candidate becomes a
//! [`Finding`] carrying the annotation's reason, and an annotation that
//! suppresses nothing at all is itself reported (the stale-suppression
//! audit) — the workspace's 20+ exemptions cannot silently rot.

use crate::lexer::{lex, Lexed};
use crate::parser::{self, Items, TokKind, Token};
use crate::report::Finding;
use crate::{taint, Diagnostic, RuleId};
use std::collections::BTreeSet;

/// Crates whose outputs feed serialized results or figures: nondeterminism
/// sources are banned here (rules L3 and L7, and the L6 re-export reach).
pub(crate) const RESULT_CRATES: &[&str] =
    &["core", "silicon", "ml", "protocol", "analysis", "bench"];

/// Crates whose `src/` is library code: panic paths are banned (rule L4).
const LIB_CRATES: &[&str] = &["core", "ml", "protocol", "silicon"];

/// Files held to the *strict* L4 profile: on top of the panic-path ban,
/// the `assert!` family is banned outside `#[cfg(test)]` regions. These are
/// the fault-injection and session-resilience modules, whose whole point is
/// that no input — however faulty — aborts the process: every path must
/// surface a typed error instead.
const L4_STRICT_FILES: &[&str] = &[
    "crates/protocol/src/faults.rs",
    "crates/protocol/src/session.rs",
];

/// Numeric-kernel hot paths held to rule L8: no truncating `as` casts or
/// float-to-int conversions without an annotated justification. These are
/// the bit-exactness-critical kernels — a silent truncation here corrupts
/// results without failing the equivalence proptests (which compare two
/// runs of the same wrong kernel).
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/batch.rs",
    "crates/core/src/bitslice.rs",
    "crates/ml/src/gemm.rs",
];

/// The only places allowed to carry `allow(unsafe_code)`: the bench crate
/// root (the `par` fan-out module) and the core crate root (the `bitslice`
/// SIMD-intrinsic module, whose every `unsafe` site L1 holds to a SAFETY
/// comment). The second field must appear within two lines of the
/// attribute, anchoring the allowance to that module declaration.
const ALLOW_UNSAFE_SITES: &[(&str, &str)] = &[
    ("crates/bench/src/lib.rs", "mod par"),
    ("crates/core/src/lib.rs", "mod bitslice"),
];

/// Where a file sits in the workspace, derived purely from its path.
#[derive(Debug)]
pub(crate) struct Scope {
    /// `Some("core")` for `crates/core/…`, `Some("xorpuf")` for `src/…`.
    crate_name: Option<String>,
    /// `src/lib.rs` of the root package or of any `crates/*` member.
    is_crate_root: bool,
    /// Rules L3/L7 apply, and L6 reach (result crate, non-test path).
    pub(crate) in_l3: bool,
    /// Rule L4 applies (library source of a core crate).
    in_l4: bool,
    /// The strict L4 profile applies (see [`L4_STRICT_FILES`]).
    in_l4_strict: bool,
    /// Rule L8 applies (see [`HOT_PATH_FILES`]).
    in_l8: bool,
}

impl Scope {
    fn of(rel: &str) -> Scope {
        let segs: Vec<&str> = rel.split('/').collect();
        let crate_name = match segs.first() {
            Some(&"crates") if segs.len() >= 2 => Some(segs[1].to_string()),
            Some(&"src") => Some("xorpuf".to_string()),
            _ => None,
        };
        let is_crate_root = rel == "src/lib.rs"
            || (segs.len() == 4 && segs[0] == "crates" && segs[2] == "src" && segs[3] == "lib.rs");
        let test_path = segs
            .iter()
            .any(|s| matches!(*s, "tests" | "benches" | "examples"));
        let bin_path = segs.contains(&"bin");
        let name = crate_name.as_deref().unwrap_or("");
        let in_l3 = RESULT_CRATES.contains(&name) && !test_path;
        let in_l4 =
            LIB_CRATES.contains(&name) && segs.get(2) == Some(&"src") && !test_path && !bin_path;
        let in_l4_strict = in_l4 && L4_STRICT_FILES.contains(&rel);
        let in_l8 = HOT_PATH_FILES.contains(&rel);
        Scope {
            crate_name,
            is_crate_root,
            in_l3,
            in_l4,
            in_l4_strict,
            in_l8,
        }
    }
}

/// One parsed `puf-lint` exemption annotation.
#[derive(Debug)]
struct AnnSite {
    /// 1-based line the annotation sits on.
    line: usize,
    /// The rules it exempts.
    rules: BTreeSet<RuleId>,
    /// The mandatory reason after the second `:`.
    reason: String,
    /// `allow-file` (whole file) rather than `allow` (own + next line).
    file_scope: bool,
}

/// Parsed `puf-lint` exemption annotations for one file.
#[derive(Debug, Default)]
struct Annotations {
    /// Well-formed annotation sites, in file order.
    sites: Vec<AnnSite>,
    /// L0 findings produced while parsing (malformed annotations are not
    /// sites and suppress nothing).
    diags: Vec<Diagnostic>,
}

impl Annotations {
    fn parse(rel: &str, lexed: &Lexed) -> Annotations {
        let mut ann = Annotations::default();
        for (idx, line) in lexed.lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.doc {
                continue; // doc comments describe annotations, never carry them
            }
            let Some(pos) = line.comment.find("puf-lint:") else {
                continue;
            };
            let rest = line.comment[pos + "puf-lint:".len()..].trim_start();
            let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
                (true, r)
            } else if let Some(r) = rest.strip_prefix("allow(") {
                (false, r)
            } else {
                ann.push_l0(
                    rel,
                    lineno,
                    "expected `allow(<rules>): <reason>` or `allow-file(<rules>): <reason>`",
                );
                continue;
            };
            let Some(close) = rest.find(')') else {
                ann.push_l0(rel, lineno, "unclosed rule list");
                continue;
            };
            let mut rules = BTreeSet::new();
            let mut bad = false;
            for id in rest[..close].split(',') {
                match RuleId::parse(id) {
                    Some(r) => {
                        rules.insert(r);
                    }
                    None => {
                        ann.push_l0(rel, lineno, &format!("unknown rule id `{}`", id.trim()));
                        bad = true;
                    }
                }
            }
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
            if reason.is_empty() {
                ann.push_l0(
                    rel,
                    lineno,
                    "exemption must state a reason: `allow(Lx): <why this is sound>`",
                );
                bad = true;
            }
            if bad || rules.is_empty() {
                continue;
            }
            if file_scope && lineno > 25 {
                ann.push_l0(rel, lineno, "allow-file must appear in the first 25 lines");
                continue;
            }
            ann.sites.push(AnnSite {
                line: lineno,
                rules,
                reason: reason.to_string(),
                file_scope,
            });
        }
        ann
    }

    fn push_l0(&mut self, rel: &str, line: usize, msg: &str) {
        self.diags.push(Diagnostic {
            rule: RuleId::L0,
            path: rel.to_string(),
            line,
            message: format!("malformed puf-lint annotation: {msg}"),
        });
    }

    /// Index of the site that suppresses a `rule` hit at `line`, if any.
    /// Line-scoped sites (covering their own line and the next) win over
    /// file-scoped ones, so usage is attributed to the nearest annotation.
    fn suppressor(&self, line: usize, rule: RuleId) -> Option<usize> {
        self.sites
            .iter()
            .position(|s| {
                !s.file_scope && s.rules.contains(&rule) && (s.line == line || s.line + 1 == line)
            })
            .or_else(|| {
                self.sites
                    .iter()
                    .position(|s| s.file_scope && s.rules.contains(&rule))
            })
    }
}

/// One file, lexed and parsed exactly once; every rule (token-level and
/// structural) reads from this shared single pass.
#[derive(Debug)]
pub(crate) struct FileAnalysis {
    pub(crate) rel: String,
    pub(crate) scope: Scope,
    pub(crate) lexed: Lexed,
    pub(crate) toks: Vec<Token>,
    pub(crate) items: Items,
    ann: Annotations,
    test_lines: BTreeSet<usize>,
    /// `(line, name)` at every telemetry/trace registration site — valid
    /// or not — for the L9 registry diff.
    pub(crate) telemetry_names: Vec<(usize, String)>,
    /// Rule candidates accumulated before suppression resolution.
    candidates: Vec<Diagnostic>,
}

impl FileAnalysis {
    /// Lexes and parses one file (no rules yet).
    pub(crate) fn parse(rel: &str, src: &str) -> FileAnalysis {
        let lexed = lex(src);
        let toks = parser::tokenize(&lexed);
        let items = parser::parse_items(&lexed);
        let ann = Annotations::parse(rel, &lexed);
        let test_lines = test_region_lines(&lexed);
        FileAnalysis {
            rel: rel.to_string(),
            scope: Scope::of(rel),
            lexed,
            toks,
            items,
            ann,
            test_lines,
            telemetry_names: Vec::new(),
            candidates: Vec::new(),
        }
    }

    /// Runs every file-local rule, accumulating candidates.
    pub(crate) fn run_local_rules(&mut self) {
        let mut diags = std::mem::take(&mut self.candidates);
        l1_unsafe_needs_safety(&self.rel, &self.lexed, &mut diags);
        l2_deny_unsafe_code(&self.rel, &self.lexed, &self.scope, &mut diags);
        if self.scope.in_l3 {
            l3_nondeterminism(&self.rel, &self.lexed, &self.test_lines, &mut diags);
        }
        if self.scope.in_l4 {
            l4_no_panics(&self.rel, &self.lexed, &self.test_lines, &mut diags);
        }
        if self.scope.in_l4_strict {
            l4_strict_no_asserts(&self.rel, &self.lexed, &self.test_lines, &mut diags);
        }
        self.telemetry_names = l5_telemetry_names(&self.rel, &self.lexed, &mut diags);
        if self.scope.in_l3 {
            let mut taints = Vec::new();
            taint::seed_taint(
                &self.lexed,
                &self.toks,
                &self.items,
                &self.test_lines,
                &mut taints,
            );
            for (line, message) in taints {
                diags.push(Diagnostic {
                    rule: RuleId::L7,
                    path: self.rel.clone(),
                    line,
                    message,
                });
            }
        }
        if self.scope.in_l8 {
            l8_numeric_casts(&self.rel, &self.toks, &self.test_lines, &mut diags);
        }
        self.candidates = diags;
    }

    /// Resolves suppressions over the accumulated candidates plus the
    /// workspace-level `extra` candidates anchored in this file (L6 reach,
    /// L9 use sites), then runs the stale-suppression audit. Returns every
    /// finding — suppressed and not — sorted by `(line, rule)`.
    pub(crate) fn resolve(self, extra: Vec<Diagnostic>) -> Vec<Finding> {
        let mut used = vec![false; self.ann.sites.len()];
        let mut findings: Vec<Finding> = self
            .ann
            .diags
            .iter()
            .cloned()
            .map(Finding::violation)
            .collect();
        for d in self.candidates.into_iter().chain(extra) {
            match self.ann.suppressor(d.line, d.rule) {
                Some(i) => {
                    used[i] = true;
                    findings.push(Finding::suppressed(d, &self.ann.sites[i].reason));
                }
                None => findings.push(Finding::violation(d)),
            }
        }
        for (site, _) in self.ann.sites.iter().zip(&used).filter(|&(_, &used)| !used) {
            let rules: Vec<&str> = site.rules.iter().map(|r| r.as_str()).collect();
            let verb = if site.file_scope {
                "allow-file"
            } else {
                "allow"
            };
            findings.push(Finding::violation(Diagnostic {
                rule: RuleId::L0,
                path: self.rel.clone(),
                line: site.line,
                message: format!(
                    "stale suppression: `{verb}({})` no longer suppresses any \
                     finding — remove the annotation",
                    rules.join(",")
                ),
            }));
        }
        findings.sort_by_key(|f| (f.line, f.rule));
        findings
    }
}

/// 1-based line numbers covered by `#[cfg(test)]`-gated items (including
/// `cfg(any(test, …))` unions, excluding `cfg(not(test))`).
fn test_region_lines(lexed: &Lexed) -> BTreeSet<usize> {
    let mut exempt = BTreeSet::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        let code = &line.code;
        let Some(attr_pos) = code.find("#[cfg(") else {
            continue;
        };
        let tail = &code[attr_pos..];
        if !has_word(tail, "test") || tail.contains("not(test") {
            continue;
        }
        // The gated item: everything from the attribute to the end of the
        // next braced block (or the first top-level `;` for gated
        // `use`/`mod x;` items).
        let mut depth = 0usize;
        let mut end = idx;
        'scan: for (j, l) in lexed.lines.iter().enumerate().skip(idx) {
            let start_col = if j == idx { attr_pos } else { 0 };
            for ch in l.code[start_col..].chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    ';' if depth == 0 => {
                        end = j;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            end = j;
        }
        for l in idx..=end {
            exempt.insert(l + 1);
        }
    }
    exempt
}

/// Byte positions of `word` in `code` with non-identifier boundaries.
fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    code.match_indices(word)
        .filter(|&(pos, _)| {
            let before_ok = pos == 0 || !is_ident(bytes[pos - 1]);
            let after = pos + word.len();
            let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
            before_ok && after_ok
        })
        .map(|(pos, _)| pos)
        .collect()
}

fn has_word(code: &str, word: &str) -> bool {
    !word_positions(code, word).is_empty()
}

/// Lints one file stand-alone; see [`crate::lint_source`]. Runs every
/// file-local rule (L0–L5, L7, L8) plus the stale-suppression audit, and
/// returns the unsuppressed findings. The workspace-level rules (L6
/// layering/reach, L9 registry) need the crate graph and run only through
/// [`crate::analyze_workspace`].
pub fn lint_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let mut fa = FileAnalysis::parse(rel, src);
    fa.run_local_rules();
    fa.resolve(Vec::new())
        .into_iter()
        .filter(|f| !f.suppressed)
        .map(|f| f.diagnostic())
        .collect()
}

fn comment_states_safety(comment: &str) -> bool {
    let text = comment.trim_start();
    text.starts_with("SAFETY") || text.starts_with("# Safety")
}

/// L1: every line containing the `unsafe` keyword must have a `// SAFETY:`
/// comment on it, or in the comment/attribute run directly above its
/// statement (continuation lines such as `let x =` are looked through).
/// An `unsafe fn` declaration may instead document its contract with the
/// conventional `/// # Safety` doc section — the heading counts if it
/// appears in the run above the declaration (SIMD kernels in
/// `puf_core::bitslice` are the canonical sites).
fn l1_unsafe_needs_safety(rel: &str, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        if has_safety_comment(lexed, idx) {
            continue;
        }
        diags.push(Diagnostic {
            rule: RuleId::L1,
            path: rel.to_string(),
            line: lineno,
            message: "`unsafe` without a `// SAFETY:` comment justifying it".to_string(),
        });
    }
}

fn has_safety_comment(lexed: &Lexed, idx: usize) -> bool {
    if comment_states_safety(&lexed.lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    for _ in 0..8 {
        if j == 0 {
            return false;
        }
        j -= 1;
        let l = &lexed.lines[j];
        if comment_states_safety(&l.comment) {
            return true;
        }
        let code = l.code.trim();
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        if code.ends_with(';') || code.ends_with('}') || code.ends_with('{') {
            return false; // previous statement/block: the run above ended
        }
        // otherwise: continuation of the same statement — keep looking up
    }
    false
}

/// L2: crate roots must carry `#![deny(unsafe_code)]`; `allow(unsafe_code)`
/// is only legal at the allowlisted module-declaration sites.
fn l2_deny_unsafe_code(rel: &str, lexed: &Lexed, scope: &Scope, diags: &mut Vec<Diagnostic>) {
    if scope.is_crate_root {
        let has_deny = lexed
            .lines
            .iter()
            .any(|l| l.code.contains("#![deny(unsafe_code)]"));
        if !has_deny {
            diags.push(Diagnostic {
                rule: RuleId::L2,
                path: rel.to_string(),
                line: 1,
                message: format!(
                    "crate root of `{}` is missing `#![deny(unsafe_code)]`",
                    scope.crate_name.as_deref().unwrap_or("?")
                ),
            });
        }
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        if !line.code.contains("allow(unsafe_code)") {
            continue;
        }
        let site_ok = ALLOW_UNSAFE_SITES.iter().any(|&(path, anchor)| {
            rel == path
                && lexed.lines[idx..(idx + 3).min(lexed.lines.len())]
                    .iter()
                    .any(|l| l.code.contains(anchor))
        });
        if !site_ok {
            diags.push(Diagnostic {
                rule: RuleId::L2,
                path: rel.to_string(),
                line: lineno,
                message: "`allow(unsafe_code)` outside the allowlist (only `bench::par` \
                          and `core::bitslice` may opt back in)"
                    .to_string(),
            });
        }
    }
}

/// L3: sources of run-to-run nondeterminism are banned in result-producing
/// crates — ambient RNGs, wall-clock reads, and unordered hash collections
/// (iteration order would leak into serialized results and figures).
fn l3_nondeterminism(
    rel: &str,
    lexed: &Lexed,
    test_lines: &BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    const BANNED: &[(&str, &str)] = &[
        ("thread_rng", "ambient OS-seeded RNG breaks seeded replay"),
        ("from_entropy", "OS-entropy seeding breaks seeded replay"),
        (
            "Instant::now",
            "wall-clock read outside puf-telemetry; results must not depend on time",
        ),
        (
            "SystemTime",
            "wall-clock read outside puf-telemetry; results must not depend on time",
        ),
        (
            "HashMap",
            "unordered iteration leaks into serialized output; use BTreeMap",
        ),
        (
            "HashSet",
            "unordered iteration leaks into serialized output; use BTreeSet",
        ),
    ];
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        if test_lines.contains(&lineno) {
            continue;
        }
        for &(pat, why) in BANNED {
            let hit = if pat.contains("::") {
                // Qualified pattern: substring with an ident boundary before.
                line.code.find(pat).is_some_and(|pos| {
                    pos == 0 || {
                        let b = line.code.as_bytes()[pos - 1];
                        !(b.is_ascii_alphanumeric() || b == b'_')
                    }
                })
            } else {
                has_word(&line.code, pat)
            };
            if hit {
                diags.push(Diagnostic {
                    rule: RuleId::L3,
                    path: rel.to_string(),
                    line: lineno,
                    message: format!("nondeterminism source `{pat}`: {why}"),
                });
            }
        }
    }
}

/// L4: library code in the core crates must surface errors as `Result`,
/// not panic — `unwrap`/`expect`/`panic!`-family calls are banned.
fn l4_no_panics(
    rel: &str,
    lexed: &Lexed,
    test_lines: &BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    const SUBSTR: &[&str] = &[".unwrap()", ".expect("];
    const MACROS: &[&str] = &["panic!", "unreachable!", "todo!", "unimplemented!"];
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        if test_lines.contains(&lineno) {
            continue;
        }
        for pat in SUBSTR {
            if line.code.contains(pat) {
                diags.push(Diagnostic {
                    rule: RuleId::L4,
                    path: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`{pat}…` in library code: return a Result or annotate the invariant",
                    ),
                });
            }
        }
        for mac in MACROS {
            let word = &mac[..mac.len() - 1];
            let fired = word_positions(&line.code, word)
                .iter()
                .any(|&pos| line.code.as_bytes().get(pos + word.len()) == Some(&b'!'));
            if fired {
                diags.push(Diagnostic {
                    rule: RuleId::L4,
                    path: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`{mac}` in library code: return a Result or annotate the invariant",
                    ),
                });
            }
        }
    }
}

/// Strict L4 profile for the fault-injection and session modules: the
/// `assert!` family is banned alongside the panic paths — a fault handler
/// that aborts on a surprising input defeats its purpose. Exempt with
/// `allow(L4)` like the base rule.
fn l4_strict_no_asserts(
    rel: &str,
    lexed: &Lexed,
    test_lines: &BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    const MACROS: &[&str] = &[
        "assert!",
        "assert_eq!",
        "assert_ne!",
        "debug_assert!",
        "debug_assert_eq!",
        "debug_assert_ne!",
    ];
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        if test_lines.contains(&lineno) {
            continue;
        }
        for mac in MACROS {
            let word = &mac[..mac.len() - 1];
            let fired = word_positions(&line.code, word)
                .iter()
                .any(|&pos| line.code.as_bytes().get(pos + word.len()) == Some(&b'!'));
            if fired {
                diags.push(Diagnostic {
                    rule: RuleId::L4,
                    path: rel.to_string(),
                    line: lineno,
                    message: format!(
                        "`{mac}` in a fault-handling module (strict L4): \
                         surface a typed error instead of aborting",
                    ),
                });
            }
        }
    }
}

/// L5: telemetry names registered through the `puf_telemetry` macros (and
/// `Progress::start`) must be dotted lowercase `subsystem.verb[.detail]`.
/// Structured trace events (`trace_span!` / `trace_instant!`) share the
/// namespace and the rule. Returns every `(line, name)` found at a
/// registration site — valid or not — for the L9 registry diff.
fn l5_telemetry_names(
    rel: &str,
    lexed: &Lexed,
    diags: &mut Vec<Diagnostic>,
) -> Vec<(usize, String)> {
    const MARKERS: &[&str] = &[
        "counter!",
        "gauge!",
        "span!",
        "trace!",
        "histogram!",
        "trace_span!",
        "trace_instant!",
        "Progress::start",
    ];
    let mut names = Vec::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        for marker in MARKERS {
            let word = marker.trim_end_matches('!');
            for pos in word_positions(&line.code, word) {
                if marker.ends_with('!')
                    && line.code.as_bytes().get(pos + word.len()) != Some(&b'!')
                {
                    continue;
                }
                let marker_col = line.code[..pos].chars().count();
                // The registered name: first string literal after the
                // marker — same line, or (only when the call is not closed
                // on this line) the next two lines of a wrapped call.
                let call_wraps = !line.code[pos..].contains(')');
                let name = line
                    .strings
                    .iter()
                    .find(|&&(col, _)| col > marker_col)
                    .or_else(|| {
                        if !call_wraps {
                            return None;
                        }
                        lexed.lines[idx + 1..(idx + 3).min(lexed.lines.len())]
                            .iter()
                            .find_map(|l| l.strings.first())
                    });
                let Some((_, name)) = name else {
                    continue; // dynamically built name: out of L5's reach
                };
                names.push((lineno, name.clone()));
                if !is_valid_metric_name(name) {
                    diags.push(Diagnostic {
                        rule: RuleId::L5,
                        path: rel.to_string(),
                        line: lineno,
                        message: format!(
                            "telemetry name `{name}` is not dotted lowercase \
                             `subsystem.verb[.detail]`",
                        ),
                    });
                }
            }
        }
    }
    names
}

/// L8: numeric-kernel safety in the hot-path files. Two shapes are
/// flagged, both of which silently corrupt bit-exactness when wrong:
/// truncating `as` casts to a narrower integer (or `f32`), and
/// float-to-int `as` conversions (evidenced by a float op or literal in
/// the cast operand). A deliberate cast carries
/// `// puf-lint: allow(L8): <why the range fits>`.
fn l8_numeric_casts(
    rel: &str,
    toks: &[Token],
    test_lines: &BTreeSet<usize>,
    diags: &mut Vec<Diagnostic>,
) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
    const WIDE_INT: &[&str] = &["u64", "i64", "u128", "i128", "usize", "isize"];
    const FLOAT_OPS: &[&str] = &["floor", "ceil", "round", "trunc"];
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "as" || test_lines.contains(&t.line) {
            continue;
        }
        let Some(ty) = toks.get(i + 1) else { continue };
        if ty.kind != TokKind::Ident {
            continue; // `as *const T`, `as &…`
        }
        if NARROW.contains(&ty.text.as_str()) {
            diags.push(Diagnostic {
                rule: RuleId::L8,
                path: rel.to_string(),
                line: t.line,
                message: format!(
                    "truncating `as {}` cast in a numeric-kernel hot path: use a \
                     checked/explicit conversion, or annotate why the value fits",
                    ty.text
                ),
            });
            continue;
        }
        if WIDE_INT.contains(&ty.text.as_str()) {
            // Float evidence in the cast operand: scan back through the
            // expression (bounded, stopping at a statement boundary).
            let mut float_evidence = false;
            for j in (i.saturating_sub(16)..i).rev() {
                let p = &toks[j];
                if matches!(p.text.as_str(), ";" | "{" | "}" | ",") {
                    break;
                }
                if (p.kind == TokKind::Ident && FLOAT_OPS.contains(&p.text.as_str()))
                    || (p.kind == TokKind::Number && p.text.contains('.'))
                {
                    float_evidence = true;
                    break;
                }
            }
            if float_evidence {
                diags.push(Diagnostic {
                    rule: RuleId::L8,
                    path: rel.to_string(),
                    line: t.line,
                    message: format!(
                        "float-to-int `as {}` conversion in a numeric-kernel hot \
                         path: rounding direction and range must be annotated",
                        ty.text
                    ),
                });
            }
        }
    }
}

/// `subsystem.verb[.detail…]`: ≥ 2 non-empty segments, each starting with a
/// lowercase letter and containing only `[a-z0-9_]`.
///
/// Public so `trace-check` can hold exported Chrome trace event names to
/// the same namespace rule L5 enforces at the registration sites.
pub fn is_valid_metric_name(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|seg| {
            seg.starts_with(|c: char| c.is_ascii_lowercase())
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(diags: &[Diagnostic]) -> Vec<(RuleId, usize)> {
        diags.iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn scope_derivation() {
        let s = Scope::of("crates/core/src/arbiter.rs");
        assert!(s.in_l3 && s.in_l4);
        let s = Scope::of("crates/core/src/bin/tool.rs");
        assert!(s.in_l3 && !s.in_l4, "bins: figure paths yes, library no");
        let s = Scope::of("crates/telemetry/src/span.rs");
        assert!(!s.in_l3 && !s.in_l4);
        let s = Scope::of("crates/core/tests/it.rs");
        assert!(!s.in_l3 && !s.in_l4);
        assert!(Scope::of("crates/ml/src/lib.rs").is_crate_root);
        assert!(Scope::of("src/lib.rs").is_crate_root);
        assert!(!Scope::of("src/bin/xorpuf.rs").is_crate_root);
        // L8 pins exactly the hot-path kernels.
        assert!(Scope::of("crates/core/src/batch.rs").in_l8);
        assert!(Scope::of("crates/core/src/bitslice.rs").in_l8);
        assert!(Scope::of("crates/ml/src/gemm.rs").in_l8);
        assert!(!Scope::of("crates/core/src/arbiter.rs").in_l8);
    }

    #[test]
    fn l1_flags_bare_unsafe_and_accepts_safety() {
        let src = "\
fn f() {
    let x = unsafe { danger() };
}
// SAFETY: justified because reasons.
unsafe fn g() {}
";
        let diags = lint_source("crates/bench/src/x.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L1, 2)]);
    }

    #[test]
    fn l1_accepts_safety_doc_section_on_unsafe_fn() {
        let src = "\
/// Fast kernel.
///
/// # Safety
///
/// Requires AVX2 at runtime.
#[target_feature(enable = \"avx2\")]
pub unsafe fn kernel() {}

pub unsafe fn undocumented() {}
";
        let diags = lint_source("crates/core/src/x.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L1, 9)]);
    }

    #[test]
    fn l1_looks_through_continuation_lines() {
        let src = "\
fn f() {
    // SAFETY: the range is exclusively claimed.
    let slots =
        unsafe { raw() };
}
";
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn l2_requires_deny_in_crate_roots() {
        let diags = lint_source("crates/demo/src/lib.rs", "pub fn f() {}\n");
        assert_eq!(ids(&diags), vec![(RuleId::L2, 1)]);
        let clean = lint_source(
            "crates/demo/src/lib.rs",
            "#![deny(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(clean.is_empty());
    }

    #[test]
    fn l2_rejects_stray_allow_unsafe() {
        let src = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\nmod evil;\n";
        let diags = lint_source("crates/demo/src/lib.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L2, 2)]);
    }

    #[test]
    fn l2_allowlists_bench_par() {
        let src = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\npub mod par;\n";
        assert!(lint_source("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l2_allowlists_core_bitslice() {
        let src = "#![deny(unsafe_code)]\n#[allow(unsafe_code)]\npub mod bitslice;\n";
        assert!(lint_source("crates/core/src/lib.rs", src).is_empty());
        // The anchor is per-file: `mod bitslice` elsewhere is still flagged.
        let stray = lint_source("crates/silicon/src/lib.rs", src);
        assert_eq!(ids(&stray), vec![(RuleId::L2, 2)]);
    }

    #[test]
    fn l3_fires_in_result_crates_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            ids(&lint_source("crates/protocol/src/db.rs", src)),
            vec![(RuleId::L3, 1)]
        );
        assert!(lint_source("crates/telemetry/src/db.rs", src).is_empty());
        assert!(lint_source("crates/protocol/tests/db.rs", src).is_empty());
    }

    #[test]
    fn l3_exempts_cfg_test_regions() {
        let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    #[test]
    fn t() { let _ = std::time::Instant::now(); }
}
";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l3_annotation_exempts_with_reason() {
        let src = "\
// puf-lint: allow(L3): timing feeds a telemetry gauge only
let t0 = std::time::Instant::now();
";
        assert!(lint_source("crates/bench/src/bin/fig.rs", src).is_empty());
    }

    #[test]
    fn l4_flags_panic_family() {
        let src = "\
pub fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    if a > b { panic!(\"boom\") }
    unreachable!()
}
";
        let diags = lint_source("crates/ml/src/m.rs", src);
        assert_eq!(
            ids(&diags),
            vec![
                (RuleId::L4, 2),
                (RuleId::L4, 3),
                (RuleId::L4, 4),
                (RuleId::L4, 5)
            ]
        );
        // Same file outside the L4 crates: clean.
        assert!(lint_source("crates/analysis/src/m.rs", src).is_empty());
    }

    #[test]
    fn l4_strict_bans_asserts_in_fault_modules() {
        let src = "\
pub fn f(total: usize) {
    assert!(total > 0, \"boom\");
    assert_eq!(total, 1);
    debug_assert_ne!(total, 2);
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}
";
        // The fault/session modules run the strict profile…
        let diags = lint_source("crates/protocol/src/session.rs", src);
        assert_eq!(
            ids(&diags),
            vec![(RuleId::L4, 2), (RuleId::L4, 3), (RuleId::L4, 4)]
        );
        let diags = lint_source("crates/protocol/src/faults.rs", src);
        assert_eq!(diags.len(), 3);
        // …other protocol library files keep the base profile (asserts ok).
        assert!(lint_source("crates/protocol/src/auth.rs", src).is_empty());
    }

    #[test]
    fn l4_strict_scope_pins_the_new_modules() {
        assert!(Scope::of("crates/protocol/src/session.rs").in_l4_strict);
        assert!(Scope::of("crates/protocol/src/faults.rs").in_l4_strict);
        assert!(!Scope::of("crates/protocol/src/server.rs").in_l4_strict);
        assert!(!Scope::of("crates/protocol/tests/fault_injection.rs").in_l4_strict);
        // Strict implies base L4 coverage.
        for rel in L4_STRICT_FILES {
            let s = Scope::of(rel);
            assert!(s.in_l4 && s.in_l4_strict, "{rel} must be L4-covered");
        }
    }

    #[test]
    fn l4_strict_honors_allow_annotations() {
        let src = "\
// puf-lint: allow(L4): invariant upheld by validate() at construction
pub fn f() { assert!(true); }
";
        assert!(lint_source("crates/protocol/src/faults.rs", src).is_empty());
    }

    #[test]
    fn l4_ignores_unwrap_or_and_doc_examples() {
        let src = "\
/// let y = x.unwrap();
pub fn f(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}
";
        assert!(lint_source("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn l5_checks_names_at_registration_sites() {
        let src = "\
puf_telemetry::counter!(\"core.eval.count\").inc();
puf_telemetry::gauge!(\"BadName\").set(1.0);
puf_telemetry::span!(\"nodots\");
let p = Progress::start(\"ok.name\", 10);
";
        let diags = lint_source("crates/analysis/src/t.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L5, 2), (RuleId::L5, 3)]);
    }

    #[test]
    fn l5_covers_trace_event_markers() {
        let src = "\
let _t = puf_telemetry::trace_span!(\"eval.batch.block\");
let _u = puf_telemetry::trace_span!(\"NoDots\");
puf_telemetry::trace_instant!(\"protocol.session.retry\");
puf_telemetry::trace_instant!(\"badname\");
";
        let diags = lint_source("crates/analysis/src/t.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L5, 2), (RuleId::L5, 4)]);
    }

    #[test]
    fn l5_collects_names_for_the_registry() {
        let mut fa = FileAnalysis::parse(
            "crates/analysis/src/t.rs",
            "puf_telemetry::counter!(\"a.b\").inc();\n\
             puf_telemetry::trace_span!(\"c.d.e\");\n",
        );
        fa.run_local_rules();
        let names: Vec<&str> = fa.telemetry_names.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["a.b", "c.d.e"]);
    }

    #[test]
    fn l7_taint_fires_in_result_crates_only() {
        let src = "fn f() { let rng = StdRng::seed_from_u64(42); }\n";
        let diags = lint_source("crates/silicon/src/gen.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L7, 1)]);
        assert!(diags[0].message.contains("literal seed"));
        // Outside result crates, and in test paths: silent.
        assert!(lint_source("crates/telemetry/src/gen.rs", src).is_empty());
        assert!(lint_source("crates/silicon/tests/gen.rs", src).is_empty());
    }

    #[test]
    fn l7_honors_allow_annotations() {
        let src = "\
// puf-lint: allow(L7): fixed calibration replay, stream documented in DESIGN
let rng = StdRng::seed_from_u64(42);
";
        assert!(lint_source("crates/silicon/src/gen.rs", src).is_empty());
    }

    #[test]
    fn l8_flags_truncating_and_float_casts_in_hot_paths_only() {
        let src = "\
pub fn kernel(x: u64, f: f64) -> u32 {
    let a = x as u32;
    let b = (f * 0.5).floor() as i64;
    let c = x as u64;
    let d = &a as *const u32;
    (a as u64 + b as u64 + c + d as u64) as u32
}
";
        let diags = lint_source("crates/core/src/batch.rs", src);
        assert_eq!(
            ids(&diags),
            vec![(RuleId::L8, 2), (RuleId::L8, 3), (RuleId::L8, 6)]
        );
        assert!(diags[0].message.contains("truncating"));
        assert!(diags[1].message.contains("float-to-int"));
        // The same code outside the hot-path files is not L8's business.
        assert!(lint_source("crates/core/src/other.rs", src).is_empty());
    }

    #[test]
    fn l8_ignores_use_renames_and_test_regions() {
        let src = "\
use std::fmt::Debug as Dbg;
pub fn f(x: u64) -> u64 { x as u64 }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = 3.5f64.floor() as u8; }
}
";
        assert!(lint_source("crates/ml/src/gemm.rs", src).is_empty());
    }

    #[test]
    fn l8_honors_allow_annotations() {
        let src = "\
pub fn f(x: u64) -> u32 {
    // puf-lint: allow(L8): x is a popcount of a 64-bit word, always <= 64
    x as u32
}
";
        assert!(lint_source("crates/core/src/bitslice.rs", src).is_empty());
    }

    #[test]
    fn l0_flags_reasonless_or_unknown_annotations() {
        let src = "\
// puf-lint: allow(L4)
let x = 1;
// puf-lint: allow(L12): not a rule
let y = 2;
";
        let diags = lint_source("crates/bench/src/x.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L0, 1), (RuleId::L0, 3)]);
    }

    #[test]
    fn stale_suppression_is_itself_a_finding() {
        // The annotation is well-formed but suppresses nothing: audited.
        let src = "\
// puf-lint: allow(L4): nothing below panics anymore
pub fn fine() -> u8 { 0 }
";
        let diags = lint_source("crates/ml/src/m.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L0, 1)]);
        assert!(diags[0].message.contains("stale suppression"), "{diags:?}");
        assert!(diags[0].message.contains("allow(L4)"));
        // The same annotation with a live violation under it: used, silent.
        let live = "\
// puf-lint: allow(L4): invariant upheld by caller
pub fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        assert!(lint_source("crates/ml/src/m.rs", live).is_empty());
    }

    #[test]
    fn stale_allow_file_is_audited_too() {
        let src = "// puf-lint: allow-file(L3): used to hold a HashMap\npub fn f() {}\n";
        let diags = lint_source("crates/bench/src/model.rs", src);
        assert_eq!(ids(&diags), vec![(RuleId::L0, 1)]);
        assert!(diags[0].message.contains("allow-file(L3)"));
    }

    #[test]
    fn suppressed_findings_carry_the_justification() {
        let src = "\
// puf-lint: allow(L4): price of admission
pub fn f(x: Option<u8>) -> u8 { x.unwrap() }
";
        let mut fa = FileAnalysis::parse("crates/ml/src/m.rs", src);
        fa.run_local_rules();
        let findings = fa.resolve(Vec::new());
        assert_eq!(findings.len(), 1);
        assert!(findings[0].suppressed);
        assert_eq!(
            findings[0].justification.as_deref(),
            Some("price of admission")
        );
    }

    #[test]
    fn allow_file_covers_whole_file() {
        let src = "\
// puf-lint: allow-file(L3): exhaustive model checker, test-only harness
use std::collections::HashSet;
fn f() { let _ = std::collections::HashMap::<u8, u8>::new(); }
";
        assert!(lint_source("crates/bench/src/model.rs", src).is_empty());
    }

    #[test]
    fn metric_name_validation() {
        assert!(is_valid_metric_name("core.eval"));
        assert!(is_valid_metric_name("ml.train.lbfgs.loss"));
        assert!(!is_valid_metric_name("single"));
        assert!(!is_valid_metric_name("Bad.Name"));
        assert!(!is_valid_metric_name("trailing."));
        assert!(!is_valid_metric_name(".leading"));
        assert!(!is_valid_metric_name("has.1digitstart"));
        assert!(is_valid_metric_name("has.x1digit_ok"));
    }
}
