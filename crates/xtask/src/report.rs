//! Machine-readable lint findings: the [`Finding`]/[`LintReport`] model,
//! a SARIF-like JSON serialization (`cargo xtask lint --report`), and the
//! baseline gate that `scripts/check.sh` uses to diff finding counts the
//! same way `bench-diff` gates BENCH JSONs.
//!
//! Unlike a [`crate::Diagnostic`] — which only exists for *unsuppressed*
//! violations — a [`Finding`] also records rule hits that an exemption
//! annotation suppressed, together with the annotation's reason. That is
//! what makes the report auditable: the committed baseline
//! (`results/LINT_baseline.json`) pins the per-rule suppressed counts, so
//! quietly adding an `allow(...)` annotation (exemption creep) fails the
//! gate even though `cargo xtask lint` itself still exits zero.
//!
//! The JSON is fully deterministic — no timestamps, stable ordering — so
//! two runs over the same tree produce byte-identical reports.

use crate::json::{self, Value};
use crate::{Diagnostic, RuleId};
use std::collections::BTreeMap;

/// Every rule id, in report order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::L0,
    RuleId::L1,
    RuleId::L2,
    RuleId::L3,
    RuleId::L4,
    RuleId::L5,
    RuleId::L6,
    RuleId::L7,
    RuleId::L8,
    RuleId::L9,
];

/// One rule hit, suppressed or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// An exemption annotation covers this hit.
    pub suppressed: bool,
    /// The annotation's stated reason, when suppressed.
    pub justification: Option<String>,
}

impl Finding {
    /// An unsuppressed finding from a diagnostic.
    pub fn violation(d: Diagnostic) -> Finding {
        Finding {
            rule: d.rule,
            path: d.path,
            line: d.line,
            message: d.message,
            suppressed: false,
            justification: None,
        }
    }

    /// A finding suppressed by an annotation stating `reason`.
    pub fn suppressed(d: Diagnostic, reason: &str) -> Finding {
        Finding {
            rule: d.rule,
            path: d.path,
            line: d.line,
            message: d.message,
            suppressed: true,
            justification: Some(reason.to_string()),
        }
    }

    /// The diagnostic view (drops suppression state).
    pub fn diagnostic(&self) -> Diagnostic {
        Diagnostic {
            rule: self.rule,
            path: self.path.clone(),
            line: self.line,
            message: self.message.clone(),
        }
    }
}

/// The full product of one workspace analysis pass.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Source files scanned.
    pub files: usize,
    /// All findings, sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Every telemetry/trace name seen at a registration site, sorted and
    /// deduplicated — the input to `--update-registry`.
    pub telemetry_names: Vec<String>,
}

impl LintReport {
    /// Unsuppressed findings — what fails the lint gate.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// `(violations, suppressed)` per rule, for every rule id (zeroes
    /// included, so the baseline diff sees a stable key set).
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut out: BTreeMap<&'static str, (usize, usize)> =
            ALL_RULES.iter().map(|r| (r.as_str(), (0, 0))).collect();
        for f in &self.findings {
            let slot = out.entry(f.rule.as_str()).or_default();
            if f.suppressed {
                slot.1 += 1;
            } else {
                slot.0 += 1;
            }
        }
        out
    }

    /// Serializes the report as deterministic SARIF-like JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096 + self.findings.len() * 160);
        s.push_str("{\n  \"schema\": {\"tool\": \"puf-lint\", \"version\": 1, ");
        s.push_str("\"rules\": \"L0-L9\"},\n");
        let (viol, supp) =
            self.findings
                .iter()
                .fold((0usize, 0usize), |(v, sp), f| match f.suppressed {
                    false => (v + 1, sp),
                    true => (v, sp + 1),
                });
        s.push_str(&format!(
            "  \"summary\": {{\"files\": {}, \"violations\": {viol}, \"suppressed\": {supp},\n",
            self.files
        ));
        s.push_str("    \"rules\": {");
        let counts = self.rule_counts();
        for (i, (rule, (v, sp))) in counts.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{rule}\": {{\"violations\": {v}, \"suppressed\": {sp}}}"
            ));
        }
        s.push_str("}},\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            s.push_str(if i > 0 { ",\n    " } else { "\n    " });
            s.push_str(&format!(
                "{{\"rule\": \"{}\", \"path\": {}, \"line\": {}, \"message\": {}, \
                 \"suppressed\": {}",
                f.rule,
                esc(&f.path),
                f.line,
                esc(&f.message),
                f.suppressed
            ));
            if let Some(j) = &f.justification {
                s.push_str(&format!(", \"justification\": {}", esc(j)));
            }
            s.push('}');
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

/// JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Outcome of diffing a report against the committed baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Hard failures: per-rule counts grew past the baseline.
    pub failures: Vec<String>,
    /// Advisories: counts shrank — the baseline should be refreshed.
    pub notes: Vec<String>,
}

impl BaselineDiff {
    /// Whether the gate passes.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Diffs `report` against a committed baseline report (JSON text as written
/// by [`LintReport::to_json`]). The gate is one-sided, like `bench-diff`:
/// any per-rule growth in violations *or suppressions* fails (a new
/// exemption must be a conscious, committed baseline change); shrinkage is
/// an advisory to refresh the baseline.
pub fn baseline_diff(report: &LintReport, baseline_json: &str) -> Result<BaselineDiff, String> {
    let root = json::parse(baseline_json).map_err(|e| format!("baseline unparseable: {e}"))?;
    let rules = root
        .get("summary")
        .and_then(|s| s.get("rules"))
        .ok_or("baseline has no `summary.rules` table")?;
    let mut diff = BaselineDiff::default();
    for (rule, (viol, supp)) in report.rule_counts() {
        let base = rules.get(rule);
        let base_viol = count_of(base, "violations");
        let base_supp = count_of(base, "suppressed");
        if viol > base_viol {
            diff.failures.push(format!(
                "{rule}: {viol} violation(s), baseline has {base_viol}"
            ));
        }
        if supp > base_supp {
            diff.failures.push(format!(
                "{rule}: {supp} suppression(s), baseline allows {base_supp} — \
                 new `allow(...)` exemptions must be committed to the baseline \
                 (results/LINT_baseline.json) in the same change"
            ));
        }
        if viol < base_viol || supp < base_supp {
            diff.notes.push(format!(
                "{rule}: counts shrank (now {viol}/{supp} vs baseline {base_viol}/{base_supp}) \
                 — refresh the baseline to lock in the improvement"
            ));
        }
    }
    Ok(diff)
}

fn count_of(rule: Option<&Value>, key: &str) -> usize {
    rule.and_then(|r| r.get(key))
        .and_then(Value::as_f64)
        .map(|v| v as usize)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, suppressed: bool) -> Finding {
        Finding {
            rule,
            path: "crates/core/src/x.rs".into(),
            line: 3,
            message: "msg with \"quotes\" and \\slash".into(),
            suppressed,
            justification: suppressed.then(|| "because".into()),
        }
    }

    fn report(findings: Vec<Finding>) -> LintReport {
        LintReport {
            files: 2,
            findings,
            telemetry_names: vec!["a.b".into()],
        }
    }

    #[test]
    fn json_round_trips_through_own_parser() {
        let r = report(vec![finding(RuleId::L3, false), finding(RuleId::L4, true)]);
        let text = r.to_json();
        let v = json::parse(&text).expect("self-parse");
        assert_eq!(
            v.get("summary")
                .and_then(|s| s.get("violations"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        assert_eq!(
            v.get("summary")
                .and_then(|s| s.get("suppressed"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        let f = v.get("findings").and_then(Value::as_array).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(
            f[0].get("message").and_then(Value::as_str),
            Some("msg with \"quotes\" and \\slash")
        );
        assert_eq!(
            f[1].get("justification").and_then(Value::as_str),
            Some("because")
        );
        // All ten rules appear in the summary table.
        for r in ALL_RULES {
            assert!(
                v.get("summary")
                    .and_then(|s| s.get("rules"))
                    .and_then(|t| t.get(r.as_str()))
                    .is_some(),
                "{r} missing from summary.rules"
            );
        }
    }

    #[test]
    fn reports_are_deterministic() {
        let r = report(vec![finding(RuleId::L1, false)]);
        assert_eq!(r.to_json(), r.to_json());
    }

    #[test]
    fn baseline_gate_flags_growth_and_notes_shrinkage() {
        let base = report(vec![finding(RuleId::L4, true)]).to_json();
        // Same shape: passes.
        let same = baseline_diff(&report(vec![finding(RuleId::L4, true)]), &base).unwrap();
        assert!(same.ok(), "{:?}", same.failures);
        assert!(same.notes.is_empty());
        // One more suppression: exemption creep, fails.
        let crept = baseline_diff(
            &report(vec![finding(RuleId::L4, true), finding(RuleId::L4, true)]),
            &base,
        )
        .unwrap();
        assert!(!crept.ok());
        assert!(crept.failures[0].contains("suppression"));
        // A violation where the baseline has none: fails.
        let broke = baseline_diff(&report(vec![finding(RuleId::L6, false)]), &base).unwrap();
        assert!(!broke.ok());
        // Fewer suppressions than baseline: passes with a refresh note.
        let improved = baseline_diff(&report(vec![]), &base).unwrap();
        assert!(improved.ok());
        assert_eq!(improved.notes.len(), 1);
        assert!(improved.notes[0].contains("refresh"));
    }

    #[test]
    fn unparseable_baseline_is_an_error() {
        assert!(baseline_diff(&report(vec![]), "not json").is_err());
        assert!(baseline_diff(&report(vec![]), "{}").is_err());
    }
}
