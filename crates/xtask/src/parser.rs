//! A token-tree parser layered on [`crate::lexer`]: turns the masked code
//! of a lexed file into a flat token stream and extracts a per-file item
//! table — `use` trees (flattened to leaf paths), functions with their
//! parameter names, `const`/`static` items, `impl` blocks, module
//! declarations, macro invocations, and loop spans with their bound
//! pattern identifiers.
//!
//! The table is deliberately *approximate where it is cheap and exact
//! where a rule depends on it*: spans are 1-based line numbers, brace
//! matching is by depth counting over masked code (string/comment braces
//! can never confuse it, because the lexer already blanked them), and
//! nothing here panics on malformed input — unparseable constructs are
//! simply absent from the table. The workspace symbol graph
//! ([`crate::symbols`]) and the determinism-taint pass ([`crate::taint`])
//! both consume this table; the rules in [`crate::rules`] use it for the
//! L6 re-export reach and L7/L8 scoping.

use crate::lexer::Lexed;

/// One token of masked code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Identifier text, numeric literal text, or a single punctuation char.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 0-based character column.
    pub col: usize,
    /// Classification.
    pub kind: TokKind,
}

/// Token classification — just enough for item extraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer or float literal (starts with a digit).
    Number,
    /// Single punctuation character.
    Punct,
}

impl Token {
    fn is(&self, text: &str) -> bool {
        self.text == text
    }
}

/// One flattened leaf of a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    /// 1-based line of the `use` keyword.
    pub line: usize,
    /// Path segments, e.g. `["std", "time", "Instant"]`. A glob import
    /// carries the segments up to the `*`.
    pub path: Vec<String>,
    /// `as` rename, if any.
    pub alias: Option<String>,
    /// Whether the declaration is `pub use` (a re-export).
    pub is_pub: bool,
    /// Whether this leaf is a glob (`::*`).
    pub glob: bool,
}

impl UseDecl {
    /// The name this import binds locally: the alias, or the last segment.
    pub fn bound_name(&self) -> &str {
        self.alias
            .as_deref()
            .or_else(|| self.path.last().map(String::as_str))
            .unwrap_or("")
    }

    /// The path joined with `::`.
    pub fn path_string(&self) -> String {
        self.path.join("::")
    }
}

/// A function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the closing brace (or of the `;` for bodyless fns).
    pub end_line: usize,
    /// Declared `pub` (any visibility restriction counts).
    pub is_pub: bool,
    /// Declared `unsafe`.
    pub is_unsafe: bool,
    /// Parameter pattern identifiers in order (`self` included as "self").
    pub params: Vec<String>,
}

/// A `const` or `static` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstItem {
    /// Item name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// `static` rather than `const`.
    pub is_static: bool,
}

/// An `impl` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplItem {
    /// The implemented type's last path segment (generics stripped).
    pub type_name: String,
    /// The trait's last path segment for `impl Trait for Type`.
    pub trait_name: Option<String>,
    /// 1-based line of the `impl` keyword.
    pub line: usize,
    /// 1-based line of the closing brace.
    pub end_line: usize,
}

/// A module declaration (`mod x;` or inline `mod x { … }`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModDecl {
    /// Module name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Inline body (`{ … }`) rather than an out-of-line file.
    pub inline: bool,
    /// Declared `pub`.
    pub is_pub: bool,
}

/// A macro invocation site (`name!(…)`, `name![…]`, `name! {…}`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroUse {
    /// Macro name (last path segment).
    pub name: String,
    /// 1-based line.
    pub line: usize,
}

/// An outer or inner attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrUse {
    /// The attribute text between the brackets, tokens joined by spaces.
    pub text: String,
    /// 1-based line of the `#`.
    pub line: usize,
}

/// A `for`/`while`/`loop` body span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSpan {
    /// 1-based line of the loop keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace.
    pub end_line: usize,
    /// Pattern identifiers bound by a `for` head (empty for `while`/`loop`).
    pub bindings: Vec<String>,
}

impl LoopSpan {
    /// Whether 1-based `line` falls inside the loop body span.
    pub fn contains(&self, line: usize) -> bool {
        self.line <= line && line <= self.end_line
    }
}

/// The per-file item table.
#[derive(Debug, Default, Clone)]
pub struct Items {
    /// Flattened `use` leaves.
    pub uses: Vec<UseDecl>,
    /// Functions.
    pub fns: Vec<FnItem>,
    /// `const`/`static` items.
    pub consts: Vec<ConstItem>,
    /// `impl` blocks.
    pub impls: Vec<ImplItem>,
    /// Module declarations.
    pub mods: Vec<ModDecl>,
    /// Macro invocation sites.
    pub macros: Vec<MacroUse>,
    /// Attributes.
    pub attrs: Vec<AttrUse>,
    /// Loop body spans (for the determinism-taint pass).
    pub loops: Vec<LoopSpan>,
}

/// Tokenizes the masked code of a lexed file. Multi-char operators are not
/// glued — `::` is two `:` tokens; the parser handles that.
pub fn tokenize(lexed: &Lexed) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut col = 0usize;
        let chars: Vec<char> = line.code.chars().collect();
        while col < chars.len() {
            let c = chars[col];
            if c.is_whitespace() {
                col += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = col;
                while col < chars.len() && (chars[col].is_alphanumeric() || chars[col] == '_') {
                    col += 1;
                }
                let text: String = chars[start..col].iter().collect();
                let kind = if c.is_ascii_digit() {
                    TokKind::Number
                } else {
                    TokKind::Ident
                };
                out.push(Token {
                    text,
                    line: lineno,
                    col: start,
                    kind,
                });
            } else {
                out.push(Token {
                    text: c.to_string(),
                    line: lineno,
                    col,
                    kind: TokKind::Punct,
                });
                col += 1;
            }
        }
    }
    out
}

/// Extracts the item table from a lexed file.
pub fn parse_items(lexed: &Lexed) -> Items {
    let toks = tokenize(lexed);
    let mut items = Items::default();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Ident, "use") if statement_start(&toks, i) => {
                i = parse_use(&toks, i, &mut items);
            }
            (TokKind::Ident, "fn") => {
                i = parse_fn(&toks, i, &mut items);
            }
            (TokKind::Ident, "const" | "static") if item_position(&toks, i) => {
                i = parse_const(&toks, i, &mut items);
            }
            (TokKind::Ident, "impl") if statement_start(&toks, i) => {
                i = parse_impl(&toks, i, &mut items);
            }
            (TokKind::Ident, "mod") if statement_start(&toks, i) => {
                i = parse_mod(&toks, i, &mut items);
            }
            (TokKind::Ident, "for") => {
                i = parse_for(&toks, i, &mut items);
            }
            (TokKind::Ident, "while" | "loop") => {
                i = parse_while_loop(&toks, i, &mut items);
            }
            (TokKind::Punct, "#") => {
                i = parse_attr(&toks, i, &mut items);
            }
            (TokKind::Ident, _) => {
                // Macro invocation: `ident !` followed by a delimiter.
                if toks.get(i + 1).is_some_and(|n| n.is("!"))
                    && toks
                        .get(i + 2)
                        .is_some_and(|n| matches!(n.text.as_str(), "(" | "[" | "{"))
                {
                    items.macros.push(MacroUse {
                        name: t.text.clone(),
                        line: t.line,
                    });
                    i += 2;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    items
}

/// Whether the token at `i` starts a statement/item: preceded by nothing,
/// `;`, `{`, `}`, or an attribute close `]`, optionally with `pub(...)`
/// visibility in between.
fn statement_start(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    // Look back over `pub`, `pub(crate)`, `unsafe`, `async`, `const`.
    while j > 0 {
        let p = &toks[j - 1];
        match p.text.as_str() {
            "pub" | "unsafe" | "async" => j -= 1,
            ")" => {
                // Possibly `pub(crate)` / `pub(super)` — walk to the `(`.
                let mut k = j - 1;
                let mut ok = false;
                while k > 0 {
                    k -= 1;
                    if toks[k].is("(") {
                        ok = k > 0 && toks[k - 1].is("pub");
                        break;
                    }
                    if j - k > 4 {
                        break;
                    }
                }
                if ok {
                    j = k; // at the `(`; its `pub` is consumed next round
                } else {
                    return false;
                }
            }
            _ => break,
        }
    }
    if j == 0 {
        return true;
    }
    matches!(toks[j - 1].text.as_str(), ";" | "{" | "}" | "]")
}

/// `const`/`static` in item position: the next-next token is `:` or the
/// next token is an ident followed by `:` — rules out `const fn`, `const
/// generics` (`const N: usize` inside `<…>` still matches, which is fine:
/// a seed-ish const generic is as good as a const for the taint pass).
fn item_position(toks: &[Token], i: usize) -> bool {
    match (toks.get(i + 1), toks.get(i + 2)) {
        (Some(name), Some(colon)) => name.kind == TokKind::Ident && colon.is(":"),
        _ => false,
    }
}

/// Advances past the balanced bracket opened at `toks[i]`; returns the
/// index just after the close (or `toks.len()` if unbalanced).
fn skip_balanced(toks: &[Token], i: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is(open) {
            depth += 1;
        } else if toks[j].is(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Advances past a balanced `<…>` generics list opened at `toks[i]`.
/// Comparison operators can't appear in the positions we call this from
/// (directly after a fn name or `impl`).
fn skip_generics(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            "{" | ";" => return j, // malformed; bail before the body
            _ => {}
        }
        j += 1;
    }
    j
}

fn parse_use(toks: &[Token], i: usize, items: &mut Items) -> usize {
    let line = toks[i].line;
    let is_pub = i > 0 && toks[i - 1].is("pub");
    // Collect tokens to the terminating `;`.
    let mut j = i + 1;
    let start = j;
    while j < toks.len() && !toks[j].is(";") {
        j += 1;
    }
    let tree = &toks[start..j];
    let mut leaves = Vec::new();
    flatten_use_tree(tree, &mut Vec::new(), &mut leaves);
    for (path, alias, glob) in leaves {
        if !path.is_empty() {
            items.uses.push(UseDecl {
                line,
                path,
                alias,
                is_pub,
                glob,
            });
        }
    }
    j + 1
}

/// Recursively flattens a use tree (`a::b::{c, d as e, f::*}`) into
/// `(path, alias, glob)` leaves.
fn flatten_use_tree(
    toks: &[Token],
    prefix: &mut Vec<String>,
    out: &mut Vec<(Vec<String>, Option<String>, bool)>,
) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0usize;
    let flush = |segs: &mut Vec<String>,
                 prefix: &[String],
                 alias: Option<String>,
                 glob: bool,
                 out: &mut Vec<(Vec<String>, Option<String>, bool)>| {
        if !segs.is_empty() || glob {
            let mut path = prefix.to_vec();
            path.append(segs);
            out.push((path, alias, glob));
        }
    };
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            ":" => i += 1, // half of `::`
            "," => {
                flush(&mut segs, prefix, None, false, out);
                i += 1;
            }
            "*" => {
                flush(&mut segs, prefix, None, true, out);
                segs.clear();
                i += 1;
            }
            "as" => {
                let alias = toks.get(i + 1).map(|a| a.text.clone());
                flush(&mut segs, prefix, alias, false, out);
                segs.clear();
                i += 2;
            }
            "{" => {
                let end = skip_balanced(toks, i, "{", "}");
                let inner = &toks[i + 1..end.saturating_sub(1).max(i + 1)];
                let saved = prefix.len();
                prefix.append(&mut segs);
                flatten_use_tree(inner, prefix, out);
                prefix.truncate(saved);
                i = end;
            }
            "}" => i += 1,
            _ if t.kind != TokKind::Punct => {
                segs.push(t.text.clone());
                i += 1;
            }
            _ => i += 1,
        }
    }
    flush(&mut segs, prefix, None, false, out);
}

fn parse_fn(toks: &[Token], i: usize, items: &mut Items) -> usize {
    let line = toks[i].line;
    let mut is_pub = false;
    let mut is_unsafe = false;
    let mut back = i;
    while back > 0 {
        back -= 1;
        match toks[back].text.as_str() {
            "pub" => is_pub = true,
            "unsafe" => is_unsafe = true,
            "const" | "async" | "extern" | ")" | "(" | "crate" | "super" => {}
            _ => break,
        }
    }
    let Some(name_tok) = toks.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != TokKind::Ident {
        return i + 1; // `fn` in a type position (fn pointers)
    }
    let name = name_tok.text.clone();
    let mut j = i + 2;
    if toks.get(j).is_some_and(|t| t.is("<")) {
        j = skip_generics(toks, j);
    }
    let mut params = Vec::new();
    if toks.get(j).is_some_and(|t| t.is("(")) {
        let end = skip_balanced(toks, j, "(", ")");
        params = param_names(&toks[j + 1..end.saturating_sub(1).max(j + 1)]);
        j = end;
    }
    // Find the body `{` (skipping the return type and where clause) or a
    // terminating `;` (trait method declarations).
    let mut depth_angle = 0i64;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "<" => depth_angle += 1,
            ">" => depth_angle -= 1,
            ";" if depth_angle <= 0 => {
                items.fns.push(FnItem {
                    name,
                    line,
                    end_line: toks[j].line,
                    is_pub,
                    is_unsafe,
                    params,
                });
                return j + 1;
            }
            "{" if depth_angle <= 0 => {
                let end = skip_balanced(toks, j, "{", "}");
                let end_line = toks
                    .get(end.saturating_sub(1))
                    .map(|t| t.line)
                    .unwrap_or(line);
                items.fns.push(FnItem {
                    name,
                    line,
                    end_line,
                    is_pub,
                    is_unsafe,
                    params,
                });
                return j + 1; // body re-scanned for nested items by caller? no — continue past
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Parameter pattern identifiers: for each comma-separated parameter at
/// paren depth 0, the identifiers before the `:` (skipping `mut`, `&`,
/// lifetimes); a bare `self` receiver binds "self".
fn param_names(toks: &[Token]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i64;
    let mut param: Vec<&Token> = Vec::new();
    let flush = |param: &mut Vec<&Token>, out: &mut Vec<String>| {
        let before_colon: Vec<&&Token> = param
            .iter()
            .take_while(|t| !t.is(":"))
            .filter(|t| t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref"))
            .collect();
        if let Some(t) = before_colon.last() {
            out.push(t.text.clone());
        }
        param.clear();
    };
    for t in toks {
        match t.text.as_str() {
            "(" | "[" | "<" | "{" => {
                depth += 1;
                param.push(t);
            }
            ")" | "]" | ">" | "}" => {
                depth -= 1;
                param.push(t);
            }
            "," if depth == 0 => flush(&mut param, &mut out),
            _ => param.push(t),
        }
    }
    flush(&mut param, &mut out);
    out
}

fn parse_const(toks: &[Token], i: usize, items: &mut Items) -> usize {
    let is_static = toks[i].is("static");
    let Some(name_tok) = toks.get(i + 1) else {
        return i + 1;
    };
    // `static mut NAME` — step over `mut`.
    let (name_tok, consumed) = if name_tok.is("mut") {
        match toks.get(i + 2) {
            Some(t) => (t, 3),
            None => return i + 2,
        }
    } else {
        (name_tok, 2)
    };
    if name_tok.kind == TokKind::Ident {
        items.consts.push(ConstItem {
            name: name_tok.text.clone(),
            line: toks[i].line,
            is_static,
        });
    }
    i + consumed
}

fn parse_impl(toks: &[Token], i: usize, items: &mut Items) -> usize {
    let line = toks[i].line;
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is("<")) {
        j = skip_generics(toks, j);
    }
    // Collect path tokens until `for`, `{`, or `where`.
    let mut first: Vec<String> = Vec::new();
    let mut second: Vec<String> = Vec::new();
    let mut cur = &mut first;
    let mut saw_for = false;
    while j < toks.len() {
        let t = &toks[j];
        match t.text.as_str() {
            "for" => {
                saw_for = true;
                cur = &mut second;
                j += 1;
            }
            "where" | "{" => break,
            "<" => j = skip_generics(toks, j),
            _ => {
                if t.kind == TokKind::Ident {
                    cur.push(t.text.clone());
                }
                j += 1;
            }
        }
    }
    let end = if toks.get(j).is_some_and(|t| t.is("{")) {
        skip_balanced(toks, j, "{", "}")
    } else {
        let mut k = j;
        while k < toks.len() && !toks[k].is("{") {
            k += 1;
        }
        skip_balanced(toks, k, "{", "}")
    };
    let end_line = toks
        .get(end.saturating_sub(1))
        .map(|t| t.line)
        .unwrap_or(line);
    let (type_segs, trait_segs) = if saw_for {
        (second, Some(first))
    } else {
        (first, None)
    };
    if let Some(type_name) = type_segs.last().cloned() {
        items.impls.push(ImplItem {
            type_name,
            trait_name: trait_segs.and_then(|s| s.last().cloned()),
            line,
            end_line,
        });
    }
    // Do not skip the body: nested fns/loops inside impls must be seen.
    j + 1
}

fn parse_mod(toks: &[Token], i: usize, items: &mut Items) -> usize {
    let is_pub = i > 0 && toks[i - 1].is("pub");
    let Some(name_tok) = toks.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != TokKind::Ident {
        return i + 1;
    }
    let inline = toks.get(i + 2).is_some_and(|t| t.is("{"));
    items.mods.push(ModDecl {
        name: name_tok.text.clone(),
        line: toks[i].line,
        inline,
        is_pub,
    });
    i + 2
}

fn parse_attr(toks: &[Token], i: usize, items: &mut Items) -> usize {
    // `#[...]` or `#![...]`.
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is("!")) {
        j += 1;
    }
    if !toks.get(j).is_some_and(|t| t.is("[")) {
        return i + 1;
    }
    let end = skip_balanced(toks, j, "[", "]");
    let text = toks[j + 1..end.saturating_sub(1).max(j + 1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    items.attrs.push(AttrUse {
        text,
        line: toks[i].line,
    });
    end
}

fn parse_for(toks: &[Token], i: usize, items: &mut Items) -> usize {
    // Distinguish a `for` loop from `impl T for U` / `for<'a>` bounds: a
    // loop's head ends with `in` before the body brace.
    let mut bindings = Vec::new();
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is("<")) {
        return i + 1; // `for<'a>` higher-ranked bound
    }
    let mut saw_in = false;
    while j < toks.len() && j - i < 32 {
        let t = &toks[j];
        if t.is("in") {
            saw_in = true;
            break;
        }
        if t.is("{") || t.is(";") {
            break;
        }
        if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "mut" | "ref") {
            bindings.push(t.text.clone());
        }
        j += 1;
    }
    if !saw_in {
        return i + 1; // `impl … for Type {` — the impl parser owns this
    }
    // Body: first `{` after `in` at angle/paren depth 0.
    let mut k = j + 1;
    let mut depth = 0i64;
    while k < toks.len() {
        match toks[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => break,
            ";" if depth <= 0 => return k, // malformed
            _ => {}
        }
        k += 1;
    }
    if k >= toks.len() {
        return i + 1;
    }
    let end = skip_balanced(toks, k, "{", "}");
    let end_line = toks
        .get(end.saturating_sub(1))
        .map(|t| t.line)
        .unwrap_or(toks[i].line);
    items.loops.push(LoopSpan {
        line: toks[i].line,
        end_line,
        bindings,
    });
    // Do not skip the body: nested loops/items must be seen.
    i + 1
}

fn parse_while_loop(toks: &[Token], i: usize, items: &mut Items) -> usize {
    // `while cond {` / `loop {` — find the body brace at depth 0. `loop`
    // may also appear as an identifier (e.g. a field); require the brace.
    let mut k = i + 1;
    let mut depth = 0i64;
    while k < toks.len() && k - i < 256 {
        match toks[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => break,
            ";" if depth <= 0 => return i + 1,
            _ => {}
        }
        k += 1;
    }
    if k >= toks.len() || !toks[k].is("{") {
        return i + 1;
    }
    let end = skip_balanced(toks, k, "{", "}");
    let end_line = toks
        .get(end.saturating_sub(1))
        .map(|t| t.line)
        .unwrap_or(toks[i].line);
    items.loops.push(LoopSpan {
        line: toks[i].line,
        end_line,
        bindings: Vec::new(),
    });
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items(src: &str) -> Items {
        parse_items(&lex(src))
    }

    #[test]
    fn use_trees_flatten_to_leaves() {
        let it = items("use std::time::{Instant, SystemTime as St};\npub use a::b::*;\nuse x::Y;");
        let paths: Vec<(String, Option<&str>, bool, bool)> = it
            .uses
            .iter()
            .map(|u| (u.path_string(), u.alias.as_deref(), u.is_pub, u.glob))
            .collect();
        assert_eq!(
            paths,
            vec![
                ("std::time::Instant".into(), None, false, false),
                ("std::time::SystemTime".into(), Some("St"), false, false),
                ("a::b".into(), None, true, true),
                ("x::Y".into(), None, false, false),
            ]
        );
        assert_eq!(it.uses[1].bound_name(), "St");
        assert_eq!(it.uses[0].line, 1);
        assert_eq!(it.uses[2].line, 2);
    }

    #[test]
    fn nested_use_groups() {
        let it = items("use a::{b::{c, d}, e};");
        let paths: Vec<String> = it.uses.iter().map(|u| u.path_string()).collect();
        assert_eq!(paths, vec!["a::b::c", "a::b::d", "a::e"]);
    }

    #[test]
    fn fn_items_with_params_and_span() {
        let src = "\
pub fn alpha(seed: u64, n: usize) -> u64 {
    n as u64
}
unsafe fn beta(&self, x: &mut [f64]) {}
fn gamma<T: Clone>(items: &[T]);
";
        let it = items(src);
        assert_eq!(it.fns.len(), 3);
        assert_eq!(it.fns[0].name, "alpha");
        assert!(it.fns[0].is_pub && !it.fns[0].is_unsafe);
        assert_eq!(it.fns[0].params, vec!["seed", "n"]);
        assert_eq!((it.fns[0].line, it.fns[0].end_line), (1, 3));
        assert!(it.fns[1].is_unsafe);
        assert_eq!(it.fns[1].params, vec!["self", "x"]);
        assert_eq!(it.fns[2].params, vec!["items"]);
    }

    #[test]
    fn consts_statics_and_mods() {
        let src = "\
const BASE_SEED: u64 = 42;
static COUNT: usize = 0;
pub mod alpha;
mod beta { const INNER: u8 = 1; }
";
        let it = items(src);
        assert_eq!(it.consts.len(), 3);
        assert_eq!(it.consts[0].name, "BASE_SEED");
        assert!(!it.consts[0].is_static);
        assert!(it.consts[1].is_static);
        assert_eq!(it.consts[2].name, "INNER");
        assert_eq!(it.mods.len(), 2);
        assert!(it.mods[0].is_pub && !it.mods[0].inline);
        assert!(!it.mods[1].is_pub && it.mods[1].inline);
    }

    #[test]
    fn impls_and_macros() {
        let src = "\
impl Widget {
    fn f(&self) {}
}
impl Clone for Widget { fn clone(&self) -> Self { todo!() } }
fn g() { println!(\"x\"); my_macro![1, 2]; }
";
        let it = items(src);
        assert_eq!(it.impls.len(), 2);
        assert_eq!(it.impls[0].type_name, "Widget");
        assert_eq!(it.impls[0].trait_name, None);
        assert_eq!(it.impls[1].trait_name.as_deref(), Some("Clone"));
        let names: Vec<&str> = it.macros.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"println"));
        assert!(names.contains(&"my_macro"));
        assert!(names.contains(&"todo"));
    }

    #[test]
    fn loops_capture_bindings_and_spans() {
        let src = "\
fn f(xs: &[u64]) {
    for (i, x) in xs.iter().enumerate() {
        let _ = i + x;
    }
    while i < 10 {
        step();
    }
    loop {
        break;
    }
}
";
        let it = items(src);
        assert_eq!(it.loops.len(), 3);
        assert_eq!(it.loops[0].bindings, vec!["i", "x"]);
        assert_eq!((it.loops[0].line, it.loops[0].end_line), (2, 4));
        assert!(it.loops[1].bindings.is_empty());
        assert_eq!((it.loops[2].line, it.loops[2].end_line), (8, 10));
        assert!(it.loops[0].contains(3));
        assert!(!it.loops[0].contains(5));
    }

    #[test]
    fn impl_for_is_not_a_for_loop() {
        let it = items("impl Iterator for Widget { fn next(&mut self) -> Option<u8> { None } }");
        assert!(it.loops.is_empty());
        assert_eq!(it.impls.len(), 1);
    }

    #[test]
    fn attrs_are_collected() {
        let src = "#![deny(unsafe_code)]\n#[cfg(test)]\nmod tests {}\n";
        let it = items(src);
        assert_eq!(it.attrs.len(), 2);
        assert!(it.attrs[0].text.contains("deny"));
        assert!(it.attrs[1].text.contains("cfg ( test )"));
    }

    #[test]
    fn nested_items_inside_fns_are_seen() {
        let src = "\
fn outer(seed: u64) {
    const LOCAL_SEED: u64 = 7;
    for rep in 0..3 {
        inner!(rep);
    }
}
";
        let it = items(src);
        assert_eq!(it.consts[0].name, "LOCAL_SEED");
        assert_eq!(it.loops.len(), 1);
        assert_eq!(it.loops[0].bindings, vec!["rep"]);
        assert_eq!(it.macros[0].name, "inner");
    }

    #[test]
    fn malformed_input_does_not_panic() {
        for src in [
            "use ;",
            "fn",
            "fn (",
            "impl",
            "for x in",
            "const",
            "#[",
            "use a::{b",
            "fn f(x: (u8, u8)) {",
        ] {
            let _ = items(src);
        }
    }
}
