//! The workspace symbol and module graph.
//!
//! Built from two sources: the `Cargo.toml` dependency edges of every
//! workspace member (plus the root package), and the per-file item tables
//! of [`crate::parser`] — in particular `pub use` re-exports, which let a
//! crate launder another crate's (or `std`'s) symbol under a local name.
//!
//! Two rule families live on this graph:
//!
//! - **L6 layering (crate edges)**: every local dependency edge must point
//!   strictly *down* the layer map ([`LAYERS`]) — `core` can never depend
//!   on `protocol` or `bench`, and a new crate must be added to the map
//!   before it can be depended on. Checked straight off `Cargo.toml`, so
//!   the finding is anchored to the manifest line declaring the edge.
//! - **L6 layering (re-export reach)**: result crates must not *reach*
//!   wall-clock or OS-entropy APIs through local re-exports. A `use`
//!   declaration in a result crate is resolved through the workspace
//!   re-export table (transitively, bounded depth); if the terminal path
//!   lands on a banned API ([`BANNED_REACH`]), the import is flagged even
//!   though the token-level L3 rule cannot see through the rename.

use crate::parser::{Items, UseDecl};
use std::collections::BTreeMap;
use std::path::Path;

/// The layering map: a crate may only depend on crates with a strictly
/// smaller layer number. `xorpuf` is the root package; `xtask` is
/// tooling and sits at the top so it could observe everything (today it
/// only uses `telemetry`).
pub const LAYERS: &[(&str, u32)] = &[
    ("telemetry", 0),
    ("core", 1),
    ("silicon", 2),
    ("ml", 2),
    ("analysis", 3),
    ("protocol", 3),
    ("bench", 4),
    ("xorpuf", 5),
    ("xtask", 5),
];

/// Terminal paths a result crate must not reach through re-exports:
/// wall clocks, OS entropy, and unordered hash collections. A resolved
/// `use` path matching one of these (exactly or as a prefix) is an L6
/// violation at the importing line.
pub const BANNED_REACH: &[(&str, &str)] = &[
    ("std::time::Instant", "wall-clock read"),
    ("std::time::SystemTime", "wall-clock read"),
    ("std::collections::HashMap", "unordered iteration"),
    ("std::collections::HashSet", "unordered iteration"),
    ("rand::thread_rng", "ambient OS-seeded RNG"),
    ("rand::rngs::ThreadRng", "ambient OS-seeded RNG"),
    ("rand::rngs::OsRng", "OS entropy source"),
];

/// One dependency edge declared in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepEdge {
    /// The dependency's package name as written (`puf-core`, `rand`).
    pub package: String,
    /// 1-based line in the manifest.
    pub line: usize,
    /// Declared under `[dev-dependencies]` (exempt from layering: tests
    /// may look upward).
    pub dev: bool,
}

/// One workspace crate (or the root package).
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Directory-derived short name: `core`, `ml`, … (`xorpuf` for the
    /// root package).
    pub short: String,
    /// Package name from the manifest (`puf-core`).
    pub package: String,
    /// The `use`-path identifier (`puf_core`).
    pub ident: String,
    /// Manifest path relative to the workspace root, `/`-separated.
    pub manifest_rel: String,
    /// Dependency edges.
    pub deps: Vec<DepEdge>,
}

/// The workspace crate graph plus the re-export table.
#[derive(Debug, Default)]
pub struct CrateGraph {
    /// Crates, sorted by short name.
    pub crates: Vec<CrateInfo>,
    /// Re-export table: (crate ident, exported name) → full target path
    /// as written at the `pub use` site.
    pub reexports: BTreeMap<(String, String), String>,
}

impl CrateGraph {
    /// Reads every workspace manifest under `root` (the root package and
    /// `crates/*`). Missing or unreadable manifests are skipped — the
    /// graph is best-effort; rules degrade to fewer findings, never to
    /// false ones.
    pub fn from_manifests(root: &Path) -> CrateGraph {
        let mut crates = Vec::new();
        if let Some(info) = read_manifest(root, Path::new("Cargo.toml"), "xorpuf") {
            crates.push(info);
        }
        let crates_dir = root.join("crates");
        let mut dirs: Vec<String> = match std::fs::read_dir(&crates_dir) {
            Ok(rd) => rd
                .filter_map(|e| e.ok())
                .filter(|e| e.file_type().map(|t| t.is_dir()).unwrap_or(false))
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .collect(),
            Err(_) => Vec::new(),
        };
        dirs.sort();
        for dir in dirs {
            let rel = format!("crates/{dir}/Cargo.toml");
            if let Some(info) = read_manifest(root, Path::new(&rel), &dir) {
                crates.push(info);
            }
        }
        crates.sort_by(|a, b| a.short.cmp(&b.short));
        CrateGraph {
            crates,
            reexports: BTreeMap::new(),
        }
    }

    /// Registers the `pub use` re-exports of one analyzed file. `crate_ident`
    /// is the owning crate's use-path identifier (`puf_core`).
    pub fn record_reexports(&mut self, crate_ident: &str, items: &Items) {
        for u in &items.uses {
            if !u.is_pub || u.glob || u.path.is_empty() {
                continue;
            }
            self.reexports.insert(
                (crate_ident.to_string(), u.bound_name().to_string()),
                u.path_string(),
            );
        }
    }

    /// The crate whose use-path identifier is `ident`.
    pub fn by_ident(&self, ident: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.ident == ident)
    }

    /// The layer of a crate short name, if mapped.
    pub fn layer_of(short: &str) -> Option<u32> {
        LAYERS
            .iter()
            .find(|&&(name, _)| name == short)
            .map(|&(_, l)| l)
    }

    /// Resolves a `use` path through the workspace re-export table:
    /// while the leading segment names a local crate and the next segment
    /// is one of its root re-exports, substitute the re-export's target.
    /// Returns the terminal path (joined with `::`). Depth-bounded so a
    /// re-export cycle cannot hang the linter.
    pub fn resolve(&self, path: &[String]) -> String {
        let mut segs: Vec<String> = path.to_vec();
        for _ in 0..8 {
            let Some(first) = segs.first() else { break };
            let Some(krate) = self.by_ident(first) else {
                break;
            };
            let Some(second) = segs.get(1) else { break };
            let key = (krate.ident.clone(), second.clone());
            let Some(target) = self.reexports.get(&key) else {
                break;
            };
            let mut next: Vec<String> = target.split("::").map(str::to_string).collect();
            // `pub use crate::m::T` / `self::m::T`: anchor to the crate.
            match next.first().map(String::as_str) {
                Some("crate") | Some("self") => {
                    next[0] = krate.ident.clone();
                }
                _ => {}
            }
            next.extend(segs.drain(2..));
            if next == segs {
                break;
            }
            segs = next;
        }
        segs.join("::")
    }

    /// Whether the resolved path hits a banned terminal; returns the
    /// banned pattern and the reason.
    pub fn banned_reach(&self, resolved: &str) -> Option<(&'static str, &'static str)> {
        BANNED_REACH
            .iter()
            .find(|&&(pat, _)| resolved == pat || resolved.starts_with(&format!("{pat}::")))
            .copied()
    }

    /// Layering check over the Cargo dependency edges. Returns
    /// `(manifest_rel, line, message)` per violation.
    pub fn layering_violations(&self) -> Vec<(String, usize, String)> {
        let mut out = Vec::new();
        let by_package: BTreeMap<&str, &CrateInfo> = self
            .crates
            .iter()
            .map(|c| (c.package.as_str(), c))
            .collect();
        for c in &self.crates {
            let Some(from_layer) = Self::layer_of(&c.short) else {
                out.push((
                    c.manifest_rel.clone(),
                    1,
                    format!(
                        "crate `{}` is not in the layering map; add it to \
                         LAYERS in crates/xtask/src/symbols.rs with a layer \
                         that reflects what it may depend on",
                        c.short
                    ),
                ));
                continue;
            };
            for dep in &c.deps {
                if dep.dev {
                    continue; // tests may look upward
                }
                let Some(target) = by_package.get(dep.package.as_str()) else {
                    continue; // external (vendored) dependency
                };
                let Some(to_layer) = Self::layer_of(&target.short) else {
                    continue; // already reported on the target crate
                };
                if to_layer >= from_layer {
                    out.push((
                        c.manifest_rel.clone(),
                        dep.line,
                        format!(
                            "layering violation: `{}` (layer {from_layer}) must not \
                             depend on `{}` (layer {to_layer}); edges point strictly \
                             down the layer map",
                            c.short, target.short
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// Checks one file's `use` declarations for banned re-export reach. Only
/// *disguised* reach is this rule's business: imports laundered through a
/// workspace re-export, or renamed at the import (`as`) — both defeat the
/// token-level L3 scan. A plain direct `use std::time::Instant;` is left
/// to L3, whose call-site findings carry the existing exemptions. The
/// caller restricts this to result-crate non-test files.
pub fn reach_violations(graph: &CrateGraph, uses: &[UseDecl], out: &mut Vec<(usize, String)>) {
    for u in uses {
        let resolved = graph.resolve(&u.path);
        let disguised = u.path_string() != resolved || u.alias.is_some();
        if !disguised {
            continue;
        }
        if let Some((pat, why)) = graph.banned_reach(&resolved) {
            out.push((
                u.line,
                format!(
                    "import reaches `{pat}` ({why}) under the local name \
                     `{}` (imported as `{}`): result crates must not reach \
                     this API through re-exports or renames",
                    u.bound_name(),
                    u.path_string(),
                ),
            ));
        }
    }
}

/// Parses one manifest into a [`CrateInfo`]. Minimal TOML handling: only
/// `[package] name` and the `[dependencies]` / `[dev-dependencies]`
/// tables are read, which is all the workspace manifests use.
fn read_manifest(root: &Path, rel: &Path, short: &str) -> Option<CrateInfo> {
    let text = std::fs::read_to_string(root.join(rel)).ok()?;
    let mut package = String::new();
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            section = trimmed.trim_matches(['[', ']']).to_string();
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if section == "package" {
            if let Some(rest) = trimmed.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    package = v.trim().trim_matches('"').to_string();
                }
            }
        }
        let dev = section == "dev-dependencies";
        if section == "dependencies" || dev {
            // `puf-core.workspace = true`, `rand = { … }`, `serde = { … }`.
            let name: String = trimmed
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !name.is_empty() {
                deps.push(DepEdge {
                    package: name,
                    line: lineno,
                    dev,
                });
            }
        }
    }
    if package.is_empty() {
        package = short.to_string();
    }
    let ident = package.replace('-', "_");
    Some(CrateInfo {
        short: short.to_string(),
        package,
        ident,
        manifest_rel: rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/"),
        deps,
    })
}

/// The crate short name a workspace-relative source path belongs to:
/// `crates/core/…` → `core`, `src/…` → `xorpuf`.
pub fn crate_of(rel: &str) -> Option<&str> {
    let mut segs = rel.split('/');
    match segs.next() {
        Some("crates") => segs.next(),
        Some("src") => Some("xorpuf"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_items;

    fn graph_with(crates: Vec<CrateInfo>) -> CrateGraph {
        CrateGraph {
            crates,
            reexports: BTreeMap::new(),
        }
    }

    fn krate(short: &str, package: &str, deps: &[(&str, usize, bool)]) -> CrateInfo {
        CrateInfo {
            short: short.to_string(),
            package: package.to_string(),
            ident: package.replace('-', "_"),
            manifest_rel: format!("crates/{short}/Cargo.toml"),
            deps: deps
                .iter()
                .map(|&(p, line, dev)| DepEdge {
                    package: p.to_string(),
                    line,
                    dev,
                })
                .collect(),
        }
    }

    #[test]
    fn downward_edges_are_clean() {
        let g = graph_with(vec![
            krate("core", "puf-core", &[("puf-telemetry", 10, false)]),
            krate("telemetry", "puf-telemetry", &[]),
            krate(
                "protocol",
                "puf-protocol",
                &[("puf-core", 11, false), ("rand", 12, false)],
            ),
        ]);
        assert!(g.layering_violations().is_empty());
    }

    #[test]
    fn upward_edge_is_flagged_at_the_manifest_line() {
        let g = graph_with(vec![
            krate("core", "puf-core", &[("puf-protocol", 14, false)]),
            krate("protocol", "puf-protocol", &[]),
        ]);
        let v = g.layering_violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, "crates/core/Cargo.toml");
        assert_eq!(v[0].1, 14);
        assert!(v[0].2.contains("layering violation"));
    }

    #[test]
    fn same_layer_edge_is_flagged_and_dev_deps_are_exempt() {
        let g = graph_with(vec![
            krate("ml", "puf-ml", &[("puf-silicon", 9, false)]),
            krate("silicon", "puf-silicon", &[("puf-ml", 7, true)]),
        ]);
        let v = g.layering_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].0, "crates/ml/Cargo.toml");
    }

    #[test]
    fn unmapped_crate_is_flagged_once() {
        let g = graph_with(vec![krate("newcrate", "puf-newcrate", &[])]);
        let v = g.layering_violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].2.contains("not in the layering map"));
    }

    #[test]
    fn reexport_resolution_traces_to_std() {
        let mut g = graph_with(vec![krate("telemetry", "puf-telemetry", &[])]);
        let items = parse_items(&lex("pub use std::time::Instant as Tick;"));
        g.record_reexports("puf_telemetry", &items);
        let path: Vec<String> = ["puf_telemetry", "Tick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(g.resolve(&path), "std::time::Instant");
        assert!(g.banned_reach("std::time::Instant").is_some());
        assert!(g.banned_reach("std::time::Duration").is_none());
    }

    #[test]
    fn reexport_chains_and_crate_anchors() {
        let mut g = graph_with(vec![
            krate("telemetry", "puf-telemetry", &[]),
            krate("core", "puf-core", &[]),
        ]);
        g.record_reexports(
            "puf_telemetry",
            &parse_items(&lex("pub use std::collections::HashMap as Map;")),
        );
        g.record_reexports(
            "puf_core",
            &parse_items(&lex("pub use puf_telemetry::Map as CoreMap;")),
        );
        let path: Vec<String> = ["puf_core", "CoreMap"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(g.resolve(&path), "std::collections::HashMap");
    }

    #[test]
    fn reach_violations_flag_the_import_line() {
        let mut g = graph_with(vec![krate("telemetry", "puf-telemetry", &[])]);
        g.record_reexports(
            "puf_telemetry",
            &parse_items(&lex("pub use std::time::Instant as Tick;")),
        );
        let items = parse_items(&lex("use x::Y;\nuse puf_telemetry::Tick;"));
        let mut out = Vec::new();
        reach_violations(&g, &items.uses, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
        assert!(out[0].1.contains("std::time::Instant"), "{}", out[0].1);
    }

    #[test]
    fn direct_imports_are_l3_business_but_renames_are_flagged() {
        let g = graph_with(vec![krate("bench", "puf-bench", &[])]);
        // A plain direct import: L3 sees the call sites; L6 stays silent.
        let direct = parse_items(&lex("use std::time::Instant;"));
        let mut out = Vec::new();
        reach_violations(&g, &direct.uses, &mut out);
        assert!(out.is_empty(), "{out:?}");
        // The same import renamed defeats L3's token scan: flagged.
        let renamed = parse_items(&lex("use std::time::Instant as Clock;"));
        reach_violations(&g, &renamed.uses, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].1.contains("`Clock`"), "{}", out[0].1);
    }

    #[test]
    fn crate_of_paths() {
        assert_eq!(crate_of("crates/core/src/lib.rs"), Some("core"));
        assert_eq!(crate_of("src/bin/xorpuf.rs"), Some("xorpuf"));
        assert_eq!(crate_of("tests/batch_equivalence.rs"), None);
    }

    #[test]
    fn manifest_parsing_reads_real_shapes() {
        let dir = std::env::temp_dir().join(format!("xtask-symbols-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("crates/demo")).unwrap();
        std::fs::write(
            dir.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"puf-demo\"\n\n[dependencies]\n\
             puf-core.workspace = true\nrand = { path = \"../x\" }\n\n\
             [dev-dependencies]\nproptest.workspace = true\n",
        )
        .unwrap();
        let info = read_manifest(&dir, Path::new("crates/demo/Cargo.toml"), "demo").unwrap();
        assert_eq!(info.package, "puf-demo");
        assert_eq!(info.ident, "puf_demo");
        let names: Vec<(&str, bool)> = info
            .deps
            .iter()
            .map(|d| (d.package.as_str(), d.dev))
            .collect();
        assert_eq!(
            names,
            vec![("puf-core", false), ("rand", false), ("proptest", true)]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
