//! `cargo xtask trace-check` — structural validation of exported Chrome
//! trace-event JSON (`trace_export::chrome_trace_json` output).
//!
//! The exporter is hand-rolled, so the gate re-parses its output with the
//! equally hand-rolled [`crate::json`] parser and checks the invariants a
//! trace viewer relies on:
//!
//! - `traceEvents` is an array of objects with `name`/`ph`/`ts`/`pid`/`tid`,
//! - every `ph` is `B`, `E` or `i`, and instants carry `"s":"t"`,
//! - event names obey the L5 namespace rule (dotted lowercase),
//! - per-lane (`tid`) timestamps are non-decreasing,
//! - per-lane Begin/End events balance like parentheses with matching
//!   names — orphaned Ends are tolerated only as a ring-eviction prefix
//!   (before the lane's first Begin), and nothing may be left open.

use crate::json::{self, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Summary of a validated trace, for the gate's one-line report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Distinct lanes (`tid`s).
    pub lanes: usize,
    /// Deepest span nesting observed on any lane.
    pub max_depth: usize,
    /// The `otherData.clock` tag (`tick` or `wall`).
    pub clock: String,
    /// Distinct event names, for the L9 registry check.
    pub names: BTreeSet<String>,
}

/// Validates one Chrome trace JSON document. Returns summary stats, or the
/// first structural violation found.
pub fn check_chrome_trace(doc: &str) -> Result<TraceStats, String> {
    let root = json::parse(doc).map_err(|e| e.to_string())?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing `traceEvents` array")?;
    let clock = root
        .get("otherData")
        .and_then(|o| o.get("clock"))
        .and_then(Value::as_str)
        .ok_or("missing `otherData.clock`")?;
    if clock != "tick" && clock != "wall" {
        return Err(format!("unknown clock tag `{clock}`"));
    }
    if let Some(count) = root
        .get("otherData")
        .and_then(|o| o.get("events"))
        .and_then(Value::as_f64)
    {
        if count as usize != events.len() {
            return Err(format!(
                "otherData.events says {count} but traceEvents has {}",
                events.len()
            ));
        }
    }

    // Per-lane state: (span name stack, last timestamp, seen a Begin yet).
    struct Lane {
        stack: Vec<String>,
        last_ts: f64,
        any_begin: bool,
    }
    let mut lanes: BTreeMap<i64, Lane> = BTreeMap::new();
    let mut max_depth = 0usize;
    let mut names = BTreeSet::new();

    for (i, event) in events.iter().enumerate() {
        let at = |what: &str| format!("traceEvents[{i}]: {what}");
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing string `name`"))?;
        if !crate::rules::is_valid_metric_name(name) {
            return Err(at(&format!(
                "event name `{name}` violates the dotted-lowercase namespace rule (L5)"
            )));
        }
        names.insert(name.to_string());
        let ph = event
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing string `ph`"))?;
        let ts = event
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric `ts`"))?;
        let tid = event
            .get("tid")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric `tid`"))? as i64;
        event
            .get("pid")
            .and_then(Value::as_f64)
            .ok_or_else(|| at("missing numeric `pid`"))?;

        let lane = lanes.entry(tid).or_insert(Lane {
            stack: Vec::new(),
            last_ts: f64::NEG_INFINITY,
            any_begin: false,
        });
        if ts < lane.last_ts {
            return Err(at(&format!(
                "lane {tid} timestamps go backwards ({ts} after {})",
                lane.last_ts
            )));
        }
        lane.last_ts = ts;

        match ph {
            "B" => {
                lane.any_begin = true;
                lane.stack.push(name.to_string());
                max_depth = max_depth.max(lane.stack.len());
            }
            "E" => match lane.stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(at(&format!(
                        "lane {tid} closes `{name}` but `{open}` is open"
                    )));
                }
                None => {
                    // A truncated ring may legitimately start a lane with
                    // Ends whose Begins were evicted — but only before the
                    // lane's first surviving Begin.
                    if lane.any_begin {
                        return Err(at(&format!("lane {tid} closes `{name}` with no span open")));
                    }
                }
            },
            "i" => {
                if event.get("s").and_then(Value::as_str) != Some("t") {
                    return Err(at("instant event missing `\"s\":\"t\"` scope"));
                }
            }
            other => return Err(at(&format!("unknown phase `{other}`"))),
        }
    }

    for (tid, lane) in &lanes {
        if let Some(open) = lane.stack.last() {
            return Err(format!(
                "lane {tid} ends with `{open}` still open ({} unclosed span{})",
                lane.stack.len(),
                if lane.stack.len() == 1 { "" } else { "s" },
            ));
        }
    }

    Ok(TraceStats {
        events: events.len(),
        lanes: lanes.len(),
        max_depth,
        clock: clock.to_string(),
        names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_telemetry::{trace_export, TraceClock, Tracer};

    /// Round-trip: what the exporter writes, the checker accepts.
    #[test]
    fn exporter_output_round_trips() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        {
            let _outer = t.span("test.check.outer");
            {
                let _inner = t.span("test.check.inner");
                t.instant("test.check.mark");
            }
        }
        let json = trace_export::chrome_trace_json(&t.snapshot_events(), TraceClock::Tick);
        let stats = check_chrome_trace(&json).expect("exporter output should validate");
        assert_eq!(stats.events, 5);
        assert_eq!(stats.lanes, 1);
        assert_eq!(stats.max_depth, 2);
        assert_eq!(stats.clock, "tick");
    }

    #[test]
    fn wall_clock_output_round_trips() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        t.set_clock(TraceClock::Wall);
        drop(t.span("test.check.walled"));
        let json = trace_export::chrome_trace_json(&t.snapshot_events(), TraceClock::Wall);
        let stats = check_chrome_trace(&json).unwrap();
        assert_eq!(stats.clock, "wall");
        assert_eq!(stats.events, 2);
    }

    #[test]
    fn eviction_prefix_of_orphan_ends_is_tolerated() {
        let t = Tracer::new_private();
        t.set_lane_capacity(4);
        t.set_enabled(true);
        for _ in 0..6 {
            drop(t.span("test.check.wrapped"));
        }
        assert!(t.evicted() > 0, "the ring must actually wrap");
        let json = trace_export::chrome_trace_json(&t.snapshot_events(), TraceClock::Tick);
        check_chrome_trace(&json).expect("truncated prefix should be tolerated");
    }

    #[test]
    fn corrupted_phase_is_rejected() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        drop(t.span("test.check.span"));
        let json = trace_export::chrome_trace_json(&t.snapshot_events(), TraceClock::Tick);
        let bad = json.replacen("\"ph\":\"E\"", "\"ph\":\"X\"", 1);
        let err = check_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("unknown phase"), "{err}");
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        // A Begin with no matching End: left open at the end of the lane.
        let open = r#"{"traceEvents":[
{"name":"test.check.span","cat":"puf","ph":"B","ts":0,"pid":0,"tid":0,"args":{"tick":0,"depth":0}}
],"displayTimeUnit":"ms","otherData":{"clock":"tick","events":1}}"#;
        let err = check_chrome_trace(open).unwrap_err();
        assert!(err.contains("still open"), "{err}");
        // A mid-lane orphan End (a Begin was already seen): not eviction.
        let orphan = r#"{"traceEvents":[
{"name":"test.check.a","cat":"puf","ph":"B","ts":0,"pid":0,"tid":0,"args":{"tick":0,"depth":0}},
{"name":"test.check.a","cat":"puf","ph":"E","ts":1,"pid":0,"tid":0,"args":{"tick":1,"depth":0}},
{"name":"test.check.b","cat":"puf","ph":"E","ts":2,"pid":0,"tid":0,"args":{"tick":2,"depth":0}}
],"displayTimeUnit":"ms","otherData":{"clock":"tick","events":3}}"#;
        let err = check_chrome_trace(orphan).unwrap_err();
        assert!(err.contains("no span open"), "{err}");
        // Name-mismatched close: interleaved rather than nested spans.
        let crossed = r#"{"traceEvents":[
{"name":"test.check.a","cat":"puf","ph":"B","ts":0,"pid":0,"tid":0,"args":{"tick":0,"depth":0}},
{"name":"test.check.b","cat":"puf","ph":"B","ts":1,"pid":0,"tid":0,"args":{"tick":1,"depth":1}},
{"name":"test.check.a","cat":"puf","ph":"E","ts":2,"pid":0,"tid":0,"args":{"tick":2,"depth":1}},
{"name":"test.check.b","cat":"puf","ph":"E","ts":3,"pid":0,"tid":0,"args":{"tick":3,"depth":0}}
],"displayTimeUnit":"ms","otherData":{"clock":"tick","events":4}}"#;
        let err = check_chrome_trace(crossed).unwrap_err();
        assert!(err.contains("is open"), "{err}");
    }

    #[test]
    fn bad_event_names_are_rejected() {
        let t = Tracer::new_private();
        t.set_enabled(true);
        t.instant("test.check.mark");
        let json = trace_export::chrome_trace_json(&t.snapshot_events(), TraceClock::Tick);
        let bad = json.replace("test.check.mark", "BadName");
        let err = check_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("L5"), "{err}");
    }

    #[test]
    fn non_trace_json_is_rejected() {
        assert!(check_chrome_trace("{}").is_err());
        assert!(check_chrome_trace("not json").is_err());
        assert!(check_chrome_trace("{\"traceEvents\": 5}").is_err());
    }
}
