//! `cargo xtask bench-diff` — the benchmark regression observatory.
//!
//! Compares two directories of benchmark JSON outputs (`BENCH_*.json`,
//! `CHAOS.json`) file by file: every numeric leaf is flattened to a dotted
//! path, joined across baseline and current, and judged against a
//! per-metric threshold. The direction of "better" is inferred from the
//! path (`*_per_sec`/`speedup` rise, `*_ns`/`frr`/`backoff` fall); metrics
//! with no recognisable direction are reported as info and never fail the
//! gate. Schema headers (stamped by `puf_bench::SchemaHeader`) are skipped
//! as metrics but cross-checked: a baseline captured on a different thread
//! count or `target-cpu` produces a provenance warning, since such deltas
//! measure the machine, not the code.

use crate::json::{self, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Default relative threshold: a directed metric may move 30 % against its
/// preferred direction before the gate fails. Wide on purpose — the
/// committed baselines come from developer machines, not a quiet rig.
pub const DEFAULT_THRESHOLD: f64 = 0.30;

/// Which way "better" points for one metric path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: larger is better (`*_per_sec`, `speedup`).
    HigherBetter,
    /// Cost-like: smaller is better (`*_ns`, `frr`, `backoff`, …).
    LowerBetter,
    /// No recognisable direction — report, never fail.
    Neutral,
}

/// The verdict on one joined metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within threshold (or moved the good way but below the improvement bar).
    Unchanged,
    /// Moved in the preferred direction by more than the threshold.
    Improved,
    /// Moved against the preferred direction by more than the threshold.
    Regressed,
    /// Direction unknown; shown for the record only.
    Info,
}

/// One metric compared across baseline and current.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// File the metric came from, e.g. `BENCH_eval.json`.
    pub file: String,
    /// Dotted path of the numeric leaf inside the file.
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change `(current - baseline) / |baseline|`
    /// (`current` itself when the baseline is zero).
    pub relative: f64,
    /// Inferred direction of "better".
    pub direction: Direction,
    /// The judgement under the effective threshold.
    pub verdict: Verdict,
}

/// The full comparison: per-metric deltas plus provenance warnings.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every joined metric, in (file, file order) sequence.
    pub deltas: Vec<MetricDelta>,
    /// Environment mismatches and missing files/metrics — advisory only.
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// Deltas that fail the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
    }

    /// True when any metric regressed past its threshold.
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// The human-readable delta table: one row per metric that actually
    /// moved (still-rows are counted, not listed), warnings and a verdict
    /// summary at the end.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let listed: Vec<&MetricDelta> = self
            .deltas
            .iter()
            .filter(|d| {
                matches!(d.verdict, Verdict::Improved | Verdict::Regressed)
                    || d.relative.abs() > 1e-3
            })
            .collect();
        let path_width = listed
            .iter()
            .map(|d| d.file.len() + 1 + d.path.len())
            .max()
            .unwrap_or(6)
            .max(6);
        if !listed.is_empty() {
            let _ = writeln!(
                out,
                "{:<path_width$}  {:>14}  {:>14}  {:>8}  verdict",
                "metric", "baseline", "current", "delta"
            );
        }
        for d in &listed {
            let name = format!("{}:{}", d.file, d.path);
            let verdict = match d.verdict {
                Verdict::Unchanged => "ok",
                Verdict::Improved => "improved",
                Verdict::Regressed => "REGRESSED",
                Verdict::Info => "info",
            };
            let _ = writeln!(
                out,
                "{name:<path_width$}  {:>14}  {:>14}  {:>+7.1}%  {verdict}",
                fmt_value(d.baseline),
                fmt_value(d.current),
                d.relative * 100.0,
            );
        }
        let still = self.deltas.len() - listed.len();
        if still > 0 {
            let _ = writeln!(out, "({still} unmoved metric(s) not listed)");
        }
        for w in &self.warnings {
            let _ = writeln!(out, "warning: {w}");
        }
        let regressed = self.regressions().count();
        let improved = self
            .deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Improved)
            .count();
        let _ = writeln!(
            out,
            "bench-diff: {} metric{} compared, {improved} improved, {regressed} regressed",
            self.deltas.len(),
            if self.deltas.len() == 1 { "" } else { "s" },
        );
        out
    }
}

/// Compact value formatting for the table: integers plain, large numbers
/// with thousands separators dropped (plain), small fractions with 6
/// significant digits.
fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Infers which way "better" points from the metric path. The vocabulary
/// mirrors the emitters: throughput keys end `_per_sec`, timing keys end
/// `_ns`/`_us`/`_ms`, error rates are `frr`/`far`, chaos penalties are
/// `backoff`/`lockout`/`evicted`.
pub fn direction_of(path: &str) -> Direction {
    let p = path.to_ascii_lowercase();
    const HIGHER: &[&str] = &[
        "per_sec",
        "speedup",
        "throughput",
        "accept_rate",
        "accuracy",
    ];
    const LOWER: &[&str] = &[
        "_ns", "_us", "_ms", "latency", "frr", "far", "backoff", "lockout", "evicted", "failures",
        "rejects",
    ];
    if HIGHER.iter().any(|m| p.contains(m)) {
        Direction::HigherBetter
    } else if LOWER.iter().any(|m| p.contains(m)) {
        Direction::LowerBetter
    } else {
        Direction::Neutral
    }
}

/// The effective threshold for one metric: timing metrics are the
/// noisiest, so they get double headroom; everything else uses `base`.
pub fn threshold_for(path: &str, base: f64) -> f64 {
    let p = path.to_ascii_lowercase();
    if p.contains("_ns") || p.contains("_us") || p.contains("_ms") || p.contains("latency") {
        base * 2.0
    } else {
        base
    }
}

/// Judges one joined metric.
fn judge(
    path: &str,
    baseline: f64,
    current: f64,
    base_threshold: f64,
) -> (f64, Direction, Verdict) {
    let direction = direction_of(path);
    let relative = if baseline != 0.0 {
        (current - baseline) / baseline.abs()
    } else if current == 0.0 {
        0.0
    } else {
        // Zero baseline: report the raw current value as the "change" and
        // leave the verdict directionless — a ratio would be infinite.
        return (current, direction, Verdict::Info);
    };
    let threshold = threshold_for(path, base_threshold);
    let verdict = match direction {
        Direction::Neutral => Verdict::Info,
        Direction::HigherBetter if relative < -threshold => Verdict::Regressed,
        Direction::HigherBetter if relative > threshold => Verdict::Improved,
        Direction::LowerBetter if relative > threshold => Verdict::Regressed,
        Direction::LowerBetter if relative < -threshold => Verdict::Improved,
        _ => Verdict::Unchanged,
    };
    (relative, direction, verdict)
}

/// Compares the `"schema"` headers of one file pair; environment fields
/// that differ become provenance warnings.
fn schema_warnings(file: &str, baseline: &Value, current: &Value, warnings: &mut Vec<String>) {
    let (Some(b), Some(c)) = (baseline.get("schema"), current.get("schema")) else {
        warnings.push(format!(
            "{file}: missing \"schema\" header on {} side",
            if baseline.get("schema").is_none() {
                "baseline"
            } else {
                "current"
            }
        ));
        return;
    };
    for key in ["threads", "target_cpu", "version"] {
        let bv = b.get(key);
        let cv = c.get(key);
        if bv != cv {
            warnings.push(format!(
                "{file}: schema {key} differs (baseline {}, current {}) — deltas may reflect \
                 the environment, not the code",
                render_scalar(bv),
                render_scalar(cv),
            ));
        }
    }
}

fn render_scalar(v: Option<&Value>) -> String {
    match v {
        Some(Value::String(s)) => s.clone(),
        Some(Value::Number(n)) => fmt_value(*n),
        Some(other) => format!("{other:?}"),
        None => "absent".to_string(),
    }
}

/// Diffs one parsed file pair into `report`.
pub fn diff_documents(
    file: &str,
    baseline: &Value,
    current: &Value,
    threshold: f64,
    report: &mut DiffReport,
) {
    schema_warnings(file, baseline, current, &mut report.warnings);
    let base_metrics: BTreeMap<String, f64> = baseline
        .flatten_numbers()
        .into_iter()
        .filter(|(p, _)| !p.starts_with("schema."))
        .collect();
    let mut current_metrics: BTreeMap<String, f64> = current
        .flatten_numbers()
        .into_iter()
        .filter(|(p, _)| !p.starts_with("schema."))
        .collect();
    for (path, base_value) in &base_metrics {
        match current_metrics.remove(path) {
            Some(current_value) => {
                let (relative, direction, verdict) =
                    judge(path, *base_value, current_value, threshold);
                report.deltas.push(MetricDelta {
                    file: file.to_string(),
                    path: path.clone(),
                    baseline: *base_value,
                    current: current_value,
                    relative,
                    direction,
                    verdict,
                });
            }
            None => report
                .warnings
                .push(format!("{file}: metric `{path}` vanished from current")),
        }
    }
    for path in current_metrics.keys() {
        report
            .warnings
            .push(format!("{file}: metric `{path}` is new (no baseline)"));
    }
}

/// Compares every `*.json` in `baseline_dir` against its namesake in
/// `current_dir`. Files present on only one side are warnings, not errors —
/// a fresh bench run may not regenerate every committed artifact.
pub fn diff_dirs(
    baseline_dir: &Path,
    current_dir: &Path,
    threshold: f64,
) -> std::io::Result<DiffReport> {
    let mut report = DiffReport::default();
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(baseline_dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    if names.is_empty() {
        report.warnings.push(format!(
            "no *.json baselines found in {}",
            baseline_dir.display()
        ));
    }
    for name in names {
        let current_path = current_dir.join(&name);
        if !current_path.exists() {
            report
                .warnings
                .push(format!("{name}: no current-side file (skipped)"));
            continue;
        }
        let base_text = std::fs::read_to_string(baseline_dir.join(&name))?;
        let current_text = std::fs::read_to_string(&current_path)?;
        let base_doc = match json::parse(&base_text) {
            Ok(v) => v,
            Err(e) => {
                report
                    .warnings
                    .push(format!("{name}: baseline unparsable ({e})"));
                continue;
            }
        };
        let current_doc = match json::parse(&current_text) {
            Ok(v) => v,
            Err(e) => {
                report
                    .warnings
                    .push(format!("{name}: current unparsable ({e})"));
                continue;
            }
        };
        diff_documents(&name, &base_doc, &current_doc, threshold, &mut report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A fresh scratch directory pair under the target dir (unique per
    /// test via a process-wide counter — no clocks, no randomness).
    fn scratch_pair(tag: &str) -> (PathBuf, PathBuf) {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let root = std::env::temp_dir().join(format!(
            "xtask-benchdiff-{}-{tag}-{seq}",
            std::process::id()
        ));
        let baseline = root.join("baseline");
        let current = root.join("current");
        std::fs::create_dir_all(&baseline).unwrap();
        std::fs::create_dir_all(&current).unwrap();
        (baseline, current)
    }

    const BASE: &str = r#"{
  "schema": {"version": 1, "git_commit": "aaa", "threads": 8, "target_cpu": "native"},
  "crps_per_sec": {"xor10_batched": 8000000, "xor10_scalar": 1000000},
  "p95_latency_ns": 120,
  "notes_count": 3
}"#;

    #[test]
    fn identical_dirs_have_no_regressions() {
        let (b, c) = scratch_pair("identical");
        std::fs::write(b.join("BENCH_eval.json"), BASE).unwrap();
        std::fs::write(c.join("BENCH_eval.json"), BASE).unwrap();
        let report = diff_dirs(&b, &c, DEFAULT_THRESHOLD).unwrap();
        assert!(!report.has_regressions(), "{}", report.render());
        assert_eq!(report.deltas.len(), 4);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    }

    #[test]
    fn seeded_throughput_drop_is_flagged() {
        let (b, c) = scratch_pair("seeded");
        std::fs::write(b.join("BENCH_eval.json"), BASE).unwrap();
        // xor10_batched halves: a 50 % drop on a higher-is-better metric.
        let current = BASE.replace("8000000", "4000000");
        std::fs::write(c.join("BENCH_eval.json"), current).unwrap();
        let report = diff_dirs(&b, &c, DEFAULT_THRESHOLD).unwrap();
        let regressed: Vec<&MetricDelta> = report.regressions().collect();
        assert_eq!(regressed.len(), 1, "{}", report.render());
        assert_eq!(regressed[0].path, "crps_per_sec.xor10_batched");
        assert!((regressed[0].relative + 0.5).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
    }

    #[test]
    fn latency_metrics_get_double_headroom_and_lower_is_better() {
        // +50 % latency is inside the doubled (60 %) timing threshold…
        let (rel, dir, verdict) = judge("p95_latency_ns", 100.0, 150.0, DEFAULT_THRESHOLD);
        assert_eq!(dir, Direction::LowerBetter);
        assert_eq!(verdict, Verdict::Unchanged);
        assert!((rel - 0.5).abs() < 1e-9);
        // …but +80 % is not.
        let (_, _, verdict) = judge("p95_latency_ns", 100.0, 180.0, DEFAULT_THRESHOLD);
        assert_eq!(verdict, Verdict::Regressed);
        // And a latency *drop* is an improvement, not a regression.
        let (_, _, verdict) = judge("p95_latency_ns", 100.0, 20.0, DEFAULT_THRESHOLD);
        assert_eq!(verdict, Verdict::Improved);
    }

    #[test]
    fn directionless_metrics_never_fail() {
        let (_, dir, verdict) = judge("notes_count", 3.0, 300.0, DEFAULT_THRESHOLD);
        assert_eq!(dir, Direction::Neutral);
        assert_eq!(verdict, Verdict::Info);
    }

    #[test]
    fn schema_mismatch_warns_but_does_not_fail() {
        let (b, c) = scratch_pair("schema");
        std::fs::write(b.join("BENCH_eval.json"), BASE).unwrap();
        let current = BASE.replace("\"threads\": 8", "\"threads\": 2");
        std::fs::write(c.join("BENCH_eval.json"), current).unwrap();
        let report = diff_dirs(&b, &c, DEFAULT_THRESHOLD).unwrap();
        assert!(!report.has_regressions());
        assert!(
            report.warnings.iter().any(|w| w.contains("schema threads")),
            "{:?}",
            report.warnings
        );
    }

    #[test]
    fn missing_and_new_metrics_are_warnings() {
        let (b, c) = scratch_pair("missing");
        std::fs::write(b.join("BENCH_eval.json"), BASE).unwrap();
        let current = BASE.replace("\"notes_count\": 3", "\"fresh_count\": 3");
        std::fs::write(c.join("BENCH_eval.json"), current).unwrap();
        std::fs::write(b.join("CHAOS.json"), "{}").unwrap();
        let report = diff_dirs(&b, &c, DEFAULT_THRESHOLD).unwrap();
        assert!(!report.has_regressions());
        let warnings = report.warnings.join("\n");
        assert!(warnings.contains("`notes_count` vanished"), "{warnings}");
        assert!(warnings.contains("`fresh_count` is new"), "{warnings}");
        assert!(
            warnings.contains("CHAOS.json: no current-side file"),
            "{warnings}"
        );
    }

    #[test]
    fn zero_baseline_is_informational() {
        let (relative, _, verdict) = judge("transport_failures", 0.0, 4.0, DEFAULT_THRESHOLD);
        assert_eq!(verdict, Verdict::Info);
        assert_eq!(relative, 4.0);
        let (_, _, verdict) = judge("transport_failures", 0.0, 0.0, DEFAULT_THRESHOLD);
        assert_eq!(verdict, Verdict::Unchanged);
    }
}
