//! `cargo xtask` — workspace automation. Three subcommands:
//!
//! ```text
//! cargo xtask lint [--root PATH] [--quiet] [--report FILE] [--baseline FILE] [--update-registry]
//! cargo xtask bench-diff [--baseline DIR] [--current DIR] [--threshold F]
//! cargo xtask trace-check FILE...
//! ```
//!
//! `lint` runs the repo-specific static-analysis rules (L0–L9, see the
//! crate docs and DESIGN.md §"Static analysis & verification") over every
//! workspace source and exits non-zero if any violation is found.
//! `--report` writes the full finding set — including suppressed findings
//! and their justifications — as deterministic SARIF-like JSON;
//! `--baseline` additionally gates the per-rule counts against a committed
//! report (`results/LINT_baseline.json`), failing on any growth in
//! violations *or suppressions* (exemption creep). `--update-registry`
//! regenerates the telemetry-name registry from the tree before linting.
//! `scripts/check.sh` runs the gated form before clippy, so the gate fails
//! on any new violation.
//!
//! `bench-diff` is the benchmark regression observatory: it compares every
//! `*.json` in the current directory tree against the committed baselines
//! (default `results/` vs `target/bench_current/`), prints a per-metric
//! delta table, and exits non-zero when a directed metric moved against
//! its preferred direction past the threshold (default 30 %, doubled for
//! noisy timing metrics).
//!
//! `trace-check` structurally validates Chrome trace-event JSON written by
//! `--trace` / `chaos --trace` (balanced spans per lane, monotone lane
//! timestamps, L5-clean event names).

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-diff") => bench_diff(&args[1..]),
        Some("trace-check") => trace_check(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cargo xtask lint [--root PATH] [--quiet] [--report FILE] \
         [--baseline FILE] [--update-registry]\n       \
         cargo xtask bench-diff [--baseline DIR] [--current DIR] [--threshold F] [--root PATH]\n       \
         cargo xtask trace-check FILE..."
    );
}

fn bench_diff(args: &[String]) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut threshold = xtask::benchdiff::DEFAULT_THRESHOLD;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            flag @ ("--baseline" | "--current" | "--root") => match it.next() {
                Some(p) => {
                    let slot = match flag {
                        "--baseline" => &mut baseline,
                        "--current" => &mut current,
                        _ => &mut root,
                    };
                    *slot = Some(PathBuf::from(p));
                }
                None => {
                    eprintln!("{flag} requires a path");
                    return ExitCode::from(2);
                }
            },
            "--threshold" => match it.next().and_then(|t| t.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold = t,
                _ => {
                    eprintln!("--threshold requires a positive number");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown flag `{other}` for xtask bench-diff");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root (no Cargo.toml with [workspace])");
            return ExitCode::FAILURE;
        }
    };
    let resolve = |p: PathBuf| if p.is_absolute() { p } else { root.join(p) };
    let baseline = resolve(baseline.unwrap_or_else(|| PathBuf::from("results")));
    let current = resolve(current.unwrap_or_else(|| PathBuf::from("target/bench_current")));
    let report = match xtask::benchdiff::diff_dirs(&baseline, &current, threshold) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "xtask bench-diff: failed to compare {} against {}: {e}",
                current.display(),
                baseline.display()
            );
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    if report.has_regressions() {
        eprintln!(
            "xtask bench-diff: regression past the {:.0} % threshold (see table above)",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn trace_check(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("xtask trace-check: at least one trace file required");
        usage();
        return ExitCode::from(2);
    }
    // When the workspace registry exists, hold exported trace names to it
    // (rule L9): a trace emitted by the current binaries must not contain
    // names the lint registry has never heard of.
    let registry = find_workspace_root()
        .map(|root| root.join(xtask::REGISTRY_REL))
        .and_then(|p| std::fs::read_to_string(p).ok())
        .map(|text| {
            text.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .map(str::to_string)
                .collect::<std::collections::BTreeSet<_>>()
        });
    let mut failed = false;
    for path in args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
                continue;
            }
        };
        match xtask::tracecheck::check_chrome_trace(&text) {
            Ok(stats) => {
                let unregistered: Vec<&str> = registry
                    .as_ref()
                    .map(|reg| {
                        stats
                            .names
                            .iter()
                            .map(String::as_str)
                            .filter(|n| !reg.contains(*n))
                            .collect()
                    })
                    .unwrap_or_default();
                if unregistered.is_empty() {
                    println!(
                        "{path}: ok — {} event(s), {} lane(s), max depth {}, {} clock",
                        stats.events, stats.lanes, stats.max_depth, stats.clock
                    );
                } else {
                    eprintln!(
                        "{path}: INVALID — event name(s) not in {} (L9): {}",
                        xtask::REGISTRY_REL,
                        unregistered.join(", ")
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{path}: INVALID — {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut report_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_registry = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            flag @ ("--root" | "--report" | "--baseline") => match it.next() {
                Some(p) => {
                    let slot = match flag {
                        "--root" => &mut root,
                        "--report" => &mut report_path,
                        _ => &mut baseline_path,
                    };
                    *slot = Some(PathBuf::from(p));
                }
                None => {
                    eprintln!("{flag} requires a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            "--update-registry" => update_registry = true,
            other => {
                eprintln!("unknown flag `{other}` for xtask lint");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root (no Cargo.toml with [workspace])");
            return ExitCode::FAILURE;
        }
    };

    if std::env::var("PUF_TELEMETRY")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        puf_telemetry::set_enabled(true);
    }
    let mut report = match xtask::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if update_registry {
        let registry = root.join(xtask::REGISTRY_REL);
        if let Some(parent) = registry.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("xtask lint: cannot create {}: {e}", parent.display());
                return ExitCode::FAILURE;
            }
        }
        let mut text = String::from(
            "# Telemetry and trace-event name registry (lint rule L9).\n\
             # Every name registered through the puf_telemetry macros must\n\
             # appear here; regenerate with `cargo xtask lint --update-registry`.\n",
        );
        for name in &report.telemetry_names {
            text.push_str(name);
            text.push('\n');
        }
        if let Err(e) = std::fs::write(&registry, text) {
            eprintln!("xtask lint: cannot write {}: {e}", registry.display());
            return ExitCode::FAILURE;
        }
        println!(
            "xtask lint: wrote {} name(s) to {}",
            report.telemetry_names.len(),
            xtask::REGISTRY_REL
        );
        // Re-analyze so the findings reflect the fresh registry.
        report = match xtask::analyze_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask lint: failed to re-scan {}: {e}", root.display());
                return ExitCode::FAILURE;
            }
        };
    }
    if puf_telemetry::enabled() {
        eprint!("{}", puf_telemetry::registry().render_table());
    }
    if let Some(path) = &report_path {
        let path = if path.is_absolute() {
            path.clone()
        } else {
            root.join(path)
        };
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("xtask lint: cannot write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    let diags: Vec<_> = report.violations().collect();
    if diags.is_empty() {
        if !quiet {
            println!("xtask lint: workspace clean");
        }
    } else {
        for d in &diags {
            println!("{}", d.diagnostic());
        }
        eprintln!(
            "xtask lint: {} violation{} (rules are documented in DESIGN.md; intended \
             exceptions need `// puf-lint: allow(Lx): <reason>`)",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
        );
        failed = true;
    }

    if let Some(path) = &baseline_path {
        let path = if path.is_absolute() {
            path.clone()
        } else {
            root.join(path)
        };
        match std::fs::read_to_string(&path) {
            Ok(text) => match xtask::report::baseline_diff(&report, &text) {
                Ok(diff) => {
                    for note in &diff.notes {
                        eprintln!("xtask lint: note: {note}");
                    }
                    for failure in &diff.failures {
                        eprintln!("xtask lint: baseline gate: {failure}");
                    }
                    if !diff.ok() {
                        failed = true;
                    }
                }
                Err(e) => {
                    eprintln!("xtask lint: baseline gate: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!(
                    "xtask lint: baseline gate: cannot read {}: {e}",
                    path.display()
                );
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
