//! `cargo xtask` — workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo xtask lint [--root PATH] [--quiet]
//! ```
//!
//! Runs the repo-specific static-analysis rules (L1–L5, see the crate docs
//! and DESIGN.md §"Static analysis & verification") over every workspace
//! source and exits non-zero if any violation is found. `scripts/check.sh`
//! runs this before clippy, so the gate fails on any new violation.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("unknown xtask subcommand `{other}`");
            usage();
            ExitCode::from(2)
        }
        None => {
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!("usage: cargo xtask lint [--root PATH] [--quiet]");
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            other => {
                eprintln!("unknown flag `{other}` for xtask lint");
                usage();
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root (no Cargo.toml with [workspace])");
            return ExitCode::FAILURE;
        }
    };

    if std::env::var("PUF_TELEMETRY")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        puf_telemetry::set_enabled(true);
    }
    let diags = match xtask::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask lint: failed to scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if puf_telemetry::enabled() {
        eprint!("{}", puf_telemetry::registry().render_table());
    }
    if diags.is_empty() {
        if !quiet {
            println!("xtask lint: workspace clean");
        }
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!(
        "xtask lint: {} violation{} (rules are documented in DESIGN.md; intended \
         exceptions need `// puf-lint: allow(Lx): <reason>`)",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" },
    );
    ExitCode::FAILURE
}

/// Walks upward from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
