//! The real workspace must lint clean. This test is the enforcement hook
//! inside `cargo test` itself: a violation anywhere in the repo fails the
//! tier-1 gate even if `scripts/check.sh` is skipped.

use std::path::Path;

#[test]
fn real_workspace_has_no_lint_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("resolve workspace root");
    assert!(
        root.join("Cargo.toml").is_file(),
        "expected the workspace root at {}",
        root.display()
    );
    let diags = xtask::lint_workspace(&root).expect("scan workspace sources");
    assert!(
        diags.is_empty(),
        "workspace has {} lint violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
