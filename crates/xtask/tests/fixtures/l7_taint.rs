// Fixture: L7 — determinism taint for RNG seeds in result crates.
pub fn literal_seed() {
    let _rng = StdRng::seed_from_u64(42);
}

pub fn untraceable(x: u64, index: u64) {
    let _rng = StdRng::seed_from_u64(x * 3 + index);
}

pub fn loop_invariant(master_seed: u64) {
    for rep in 0..100 {
        let _rng = StdRng::seed_from_u64(master_seed);
        let _ = rep;
    }
}

// The traceable shapes, all clean:
pub fn named_constant() {
    const REPLAY_SEED: u64 = 7;
    let _rng = StdRng::seed_from_u64(REPLAY_SEED);
}

pub fn cli_seed(seed: u64) {
    let _rng = StdRng::seed_from_u64(seed);
}

pub fn derived_lane(seed: u64) {
    for lane in 0..4u64 {
        let _rng = StdRng::seed_from_u64(splitmix64(seed, lane));
    }
}

pub fn loop_dependent(base_seed: u64) {
    for rep in 0..100u64 {
        let _rng = StdRng::seed_from_u64(base_seed ^ rep);
    }
}

pub fn annotated_replay(calib_seed: u64) {
    for _corner in 0..4 {
        // puf-lint: allow(L7): fixture exercises a justified deliberate replay
        let _rng = StdRng::seed_from_u64(calib_seed);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_hardcode_seeds() {
        let _rng = StdRng::seed_from_u64(1234);
    }
}
