// Fixture: L4 — panic paths banned in library code of the core crates.
pub fn takes_shortcuts(x: Option<u8>) -> u8 {
    let a = x.unwrap();
    let b = Some(a).expect("present");
    if a > b {
        panic!("impossible");
    }
    unreachable!()
}

pub fn fine(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

/// ```
/// let y = Some(1).unwrap(); // doc example: masked by the lexer
/// ```
pub fn documented(x: Option<u8>) -> u8 {
    x.unwrap_or_else(|| 0)
}

// puf-lint: allow(L4): fixture proving the annotation covers the next line
pub fn annotated(x: Option<u8>) -> u8 { x.unwrap() }

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        assert_eq!(super::fine(None).checked_add(1).unwrap(), 1);
    }
}
