// Fixture: L2 — a crate root missing `#![deny(unsafe_code)]`, plus a
// stray `allow(unsafe_code)` outside the bench::par allowlist.
#[allow(unsafe_code)]
pub mod evil {}
