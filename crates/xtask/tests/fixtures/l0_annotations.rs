// Fixture: L0 — exemption annotations must themselves be well-formed.
// puf-lint: allow(L4)
pub fn reasonless() {}
// puf-lint: allow(L12): not a rule id
pub fn unknown_rule() {}
// puf-lint: deny(L3): wrong verb
pub fn wrong_verb() {}
// puf-lint: allow(L1): well-formed, but stale — no unsafe below to excuse
pub fn well_formed_but_stale() {}
