// Fixture: stale suppression — annotations must keep earning their place.
// puf-lint: allow-file(L3): this file stopped using HashMap long ago
pub fn no_nondeterminism_left() -> u8 {
    7
}

// puf-lint: allow(L4): the unwrap that was here got refactored away
pub fn no_panic_left(x: Option<u8>) -> u8 {
    x.unwrap_or(0)
}

pub fn live_suppression(x: Option<u8>) -> u8 {
    // puf-lint: allow(L4): this one is still earned — the invariant holds
    x.unwrap()
}
