// Fixture: L1 — `unsafe` must carry a `// SAFETY:` justification.
pub fn justified() -> u8 {
    // SAFETY: reading a freshly written stack value is always defined.
    unsafe { std::ptr::read(&7u8) }
}

pub fn bare_block() -> u8 {
    unsafe { std::ptr::read(&9u8) }
}

unsafe fn bare_fn() {}

pub fn continuation() -> u8 {
    // SAFETY: continuation lines between the comment and the keyword are fine.
    let value =
        unsafe { std::ptr::read(&1u8) };
    value
}
