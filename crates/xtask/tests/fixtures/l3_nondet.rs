// Fixture: L3 — nondeterminism sources banned in result-producing crates.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn wall_clock() -> u128 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_nanos() % 2
}

pub fn seeded_badly() -> u64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen(&mut rng)
}

// puf-lint: allow(L3): fixture proving a reasoned annotation silences the rule
pub type Allowed = HashMap<u32, u32>;

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn test_code_is_exempt() {
        let _ = HashSet::<u8>::new();
        let _ = std::time::Instant::now();
    }
}
