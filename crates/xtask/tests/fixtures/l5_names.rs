// Fixture: L5 — telemetry names must be dotted lowercase at registration.
pub fn record() {
    puf_telemetry::counter!("fixture.lint.count").inc();
    puf_telemetry::counter!("BadName").inc();
    puf_telemetry::gauge!("nodots").set(1.0);
    let _span = puf_telemetry::span!("Fixture.Span");
    let _p = puf_telemetry::Progress::start("fixture.progress", 10);
    let _q = puf_telemetry::Progress::start("Bad.Progress", 10);
    puf_telemetry::histogram!(
        "fixture.lint.latency_ns",
    )
    .record(1);
    puf_telemetry::trace!("fixture.trace.event");
    let _t = puf_telemetry::trace_span!("fixture.trace.span");
    let _u = puf_telemetry::trace_span!("TraceBad");
    puf_telemetry::trace_instant!("fixture.trace.mark");
    puf_telemetry::trace_instant!("alsobad");
}
