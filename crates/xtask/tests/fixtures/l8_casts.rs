// Fixture: L8 — numeric-kernel cast safety in hot-path files.
pub fn truncating(x: u64) -> u32 {
    x as u32
}

pub fn float_to_int(f: f64) -> i64 {
    (f * 0.5).floor() as i64
}

pub fn widening_is_fine(x: u32) -> u64 {
    x as u64
}

pub fn pointer_casts_are_fine(x: &u32) -> u64 {
    x as *const u32 as u64
}

pub fn annotated(x: u64) -> u32 {
    // puf-lint: allow(L8): x is a popcount of one 64-bit word, always <= 64
    x as u32
}

use std::fmt::Debug as Dbg;
pub fn rename_is_not_a_cast<T: Dbg>(t: T) {
    let _ = t;
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_truncate() {
        let _ = 300u64 as u8;
        let _ = 3.7f64.floor() as u32;
    }
}
