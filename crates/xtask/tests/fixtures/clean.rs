// Fixture: clean — near-miss constructs that must never fire a rule.
pub fn near_misses(x: Result<u8, u8>) -> u8 {
    // Words like unwrap(), panic!, unsafe, HashMap are fine in comments.
    let a = x.unwrap_or(1);
    let b = x.unwrap_or_else(|_| 2);
    let msg = "calls .unwrap() and panic! inside a string literal";
    let _ = msg.len();
    a + b
}

/// ```
/// use std::collections::HashMap;
/// let m: HashMap<u8, u8> = HashMap::new();
/// assert!(m.get(&0).is_none());
/// ```
pub fn doc_example_only() {}

pub fn telemetry_ok() {
    puf_telemetry::counter!("core.fixture.count").inc();
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_do_anything() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert_eq!(m.get(&0).copied().unwrap_or(0), 0);
        let _ = std::time::Instant::now();
    }
}
