//! Property tests for the lint lexer: arbitrary interleavings of code,
//! comments, and every literal family (plain / raw / byte / raw-byte
//! strings, char literals with escapes) — including *malformed* fragments
//! — must preserve the per-line shape the rules depend on, and must never
//! leak literal or comment contents into the masked code.

use proptest::prelude::*;
use xtask::lexer::lex;

/// Fragments that may appear in any order, well-formed or not. Every
/// literal/comment fragment carries the `unwrap(` payload, which the code
/// fragments never contain — so its appearance in masked code is proof of
/// a masking leak.
const ATOMS: &[&str] = &[
    // Plain code (payload-free).
    "let x = 1;",
    "fn g<'a>(y: &'a u64) -> u64 { *y }",
    "a.b(c, d[0])",
    "#[derive(Debug)]",
    "match x { _ => 0 }",
    "\n",
    "\n\n",
    // Well-formed literals and comments carrying the payload.
    "\"unwrap()\"",
    "\"esc \\\" unwrap()\"",
    "r\"unwrap()\"",
    "r#\"raw \"quoted\" unwrap()\"#",
    "r##\"deep unwrap()\"##",
    "b\"unwrap()\"",
    "br#\"unwrap()\"#",
    "\"multi\nline unwrap()\"",
    "// unwrap()\n",
    "/// unwrap()\n",
    "/* unwrap() */",
    "/* nested /* unwrap() */ still */",
    "'\\u{7F}'",
    "'\\n'",
    "'q'",
    // Malformed fragments: the lexer must stay line-synchronized anyway.
    "\"unterminated unwrap()",
    "r#\"open fence unwrap()",
    "'\\u{bad\n",
    "'\\x\n",
    "/* unclosed unwrap()",
];

/// Indices of [`ATOMS`] that are well-formed *string* literals (each must
/// produce exactly one captured string containing the payload).
const STRING_ATOMS: &[usize] = &[7, 8, 9, 10, 11, 12, 13, 14];

/// First malformed atom index: fragments from here on may swallow the
/// rest of the input into a literal/comment, so the capture-count
/// invariant only holds for sequences before this point.
const FIRST_MALFORMED: usize = 22;

fn source_of(picks: &[usize]) -> String {
    let mut s = String::new();
    for &p in picks {
        s.push_str(ATOMS[p]);
        s.push(' ');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Masking is shape-preserving: the lexed line count equals the source
    /// line count and every masked line has exactly as many chars as its
    /// source line — even across multi-line literals, nested comments, and
    /// malformed fragments. The rules anchor findings by (line, column),
    /// so any drift here misplaces diagnostics.
    #[test]
    fn masking_preserves_line_shape(
        picks in proptest::collection::vec(0usize..ATOMS.len(), 1..40),
    ) {
        let src = source_of(&picks);
        let lexed = lex(&src);
        let src_lines: Vec<&str> = src.split('\n').collect();
        prop_assert_eq!(lexed.lines.len(), src_lines.len());
        for (idx, (line, src_line)) in lexed.lines.iter().zip(&src_lines).enumerate() {
            prop_assert_eq!(
                line.code.chars().count(),
                src_line.chars().count(),
                "line {} shape drifted", idx + 1
            );
        }
    }

    /// Literal and comment contents never leak into masked code: the
    /// payload marker, present in every literal/comment atom and absent
    /// from every code atom, must not appear in any line's `code`. Holds
    /// for well-formed input only — an unterminated `"` legitimately flips
    /// quote parity for the rest of the file (the shape invariant above
    /// still covers the malformed atoms).
    #[test]
    fn payloads_never_appear_in_masked_code(
        picks in proptest::collection::vec(0usize..FIRST_MALFORMED, 1..40),
    ) {
        let lexed = lex(&source_of(&picks));
        for (idx, line) in lexed.lines.iter().enumerate() {
            prop_assert!(
                !line.code.contains("unwrap"),
                "payload leaked into masked code on line {}: {:?}",
                idx + 1,
                line.code
            );
        }
    }

    /// For well-formed sequences, every string atom is captured exactly
    /// once, with its payload intact, and attributed to some line.
    #[test]
    fn well_formed_strings_are_captured_with_contents(
        picks in proptest::collection::vec(0usize..FIRST_MALFORMED, 1..40),
    ) {
        let expected = picks.iter().filter(|p| STRING_ATOMS.contains(p)).count();
        let lexed = lex(&source_of(&picks));
        let captured: Vec<&String> = lexed
            .lines
            .iter()
            .flat_map(|l| l.strings.iter().map(|(_, s)| s))
            .collect();
        prop_assert_eq!(captured.len(), expected);
        for s in captured {
            prop_assert!(s.contains("unwrap("), "captured string lost payload: {:?}", s);
        }
    }
}
