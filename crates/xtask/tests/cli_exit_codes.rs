//! End-to-end over the `xtask` binary: plant each seeded fixture in a
//! scratch workspace at the path its rule scope expects, run
//! `xtask lint --root <dir>`, and assert the exit code and report — the
//! same contract `scripts/check.sh` relies on.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-lint-{}-{tag}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
    dir
}

fn plant(root: &Path, rel: &str, fixture: &str) {
    let src = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let dst = root.join(rel);
    fs::create_dir_all(dst.parent().expect("rel has a parent")).expect("create crate dirs");
    fs::copy(&src, &dst).expect("copy fixture into scratch workspace");
}

fn run_lint(root: &Path) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(root)
        .output()
        .expect("spawn xtask binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn exits_nonzero_on_each_seeded_fixture() {
    let cases: &[(&str, &str, &str)] = &[
        ("l1_unsafe.rs", "crates/bench/src/l1_unsafe.rs", "[L1]"),
        ("l2_root.rs", "crates/fixture/src/lib.rs", "[L2]"),
        ("l3_nondet.rs", "crates/silicon/src/l3_nondet.rs", "[L3]"),
        ("l4_panics.rs", "crates/protocol/src/l4_panics.rs", "[L4]"),
        ("l5_names.rs", "crates/analysis/src/l5_names.rs", "[L5]"),
        (
            "l0_annotations.rs",
            "crates/bench/src/l0_annotations.rs",
            "[L0]",
        ),
    ];
    for (i, (fixture, rel, tag)) in cases.iter().enumerate() {
        let root = scratch_workspace(&format!("viol{i}"));
        plant(&root, rel, fixture);
        let (code, stdout, stderr) = run_lint(&root);
        assert_eq!(
            code, 1,
            "{fixture}: want exit 1\nstdout:\n{stdout}stderr:\n{stderr}"
        );
        assert!(
            stdout.contains(tag),
            "{fixture}: report should carry {tag}\n{stdout}"
        );
        assert!(
            stdout.contains(rel),
            "{fixture}: report should name {rel}\n{stdout}"
        );
        assert!(stderr.contains("violation"), "{fixture}: summary on stderr");
        fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn exits_zero_on_a_clean_tree() {
    let root = scratch_workspace("clean");
    plant(&root, "crates/core/src/clean.rs", "clean.rs");
    let (code, stdout, _stderr) = run_lint(&root);
    assert_eq!(code, 0, "clean tree must pass:\n{stdout}");
    assert!(stdout.contains("workspace clean"), "{stdout}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("spawn xtask binary");
    assert_eq!(out.status.code(), Some(2));
}
