//! End-to-end over the `xtask` binary: plant each seeded fixture in a
//! scratch workspace at the path its rule scope expects, run
//! `xtask lint --root <dir>`, and assert the exit code and report — the
//! same contract `scripts/check.sh` relies on.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch_workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xtask-lint-{}-{tag}", std::process::id()));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    fs::create_dir_all(&dir).expect("create scratch dir");
    fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("write manifest");
    dir
}

fn plant(root: &Path, rel: &str, fixture: &str) {
    let src = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let dst = root.join(rel);
    fs::create_dir_all(dst.parent().expect("rel has a parent")).expect("create crate dirs");
    fs::copy(&src, &dst).expect("copy fixture into scratch workspace");
}

/// Writes the scratch workspace's telemetry registry (rule L9).
fn plant_registry(root: &Path, names: &[&str]) {
    let rel = Path::new(xtask::REGISTRY_REL);
    let dst = root.join(rel);
    fs::create_dir_all(dst.parent().expect("registry rel has a parent")).expect("registry dirs");
    let mut text = String::from("# scratch registry\n");
    for n in names {
        text.push_str(n);
        text.push('\n');
    }
    fs::write(&dst, text).expect("write scratch registry");
}

fn run_lint(root: &Path) -> (i32, String, String) {
    run_lint_args(root, &[])
}

fn run_lint_args(root: &Path, extra: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("lint")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn xtask binary");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn exits_nonzero_on_each_seeded_fixture() {
    let cases: &[(&str, &str, &str)] = &[
        ("l1_unsafe.rs", "crates/bench/src/l1_unsafe.rs", "[L1]"),
        ("l2_root.rs", "crates/fixture/src/lib.rs", "[L2]"),
        ("l3_nondet.rs", "crates/silicon/src/l3_nondet.rs", "[L3]"),
        ("l4_panics.rs", "crates/protocol/src/l4_panics.rs", "[L4]"),
        ("l5_names.rs", "crates/analysis/src/l5_names.rs", "[L5]"),
        (
            "l0_annotations.rs",
            "crates/bench/src/l0_annotations.rs",
            "[L0]",
        ),
        ("l7_taint.rs", "crates/silicon/src/l7_taint.rs", "[L7]"),
        ("l8_casts.rs", "crates/core/src/bitslice.rs", "[L8]"),
        ("stale_allow.rs", "crates/ml/src/stale_allow.rs", "[L0]"),
    ];
    for (i, (fixture, rel, tag)) in cases.iter().enumerate() {
        let root = scratch_workspace(&format!("viol{i}"));
        plant(&root, rel, fixture);
        let (code, stdout, stderr) = run_lint(&root);
        assert_eq!(
            code, 1,
            "{fixture}: want exit 1\nstdout:\n{stdout}stderr:\n{stderr}"
        );
        assert!(
            stdout.contains(tag),
            "{fixture}: report should carry {tag}\n{stdout}"
        );
        assert!(
            stdout.contains(rel),
            "{fixture}: report should name {rel}\n{stdout}"
        );
        assert!(stderr.contains("violation"), "{fixture}: summary on stderr");
        fs::remove_dir_all(&root).ok();
    }
}

#[test]
fn exits_zero_on_a_clean_tree() {
    let root = scratch_workspace("clean");
    plant(&root, "crates/core/src/clean.rs", "clean.rs");
    // clean.rs registers one telemetry name; the registry must carry it.
    plant_registry(&root, &["core.fixture.count"]);
    let (code, stdout, _stderr) = run_lint(&root);
    assert_eq!(code, 0, "clean tree must pass:\n{stdout}");
    assert!(stdout.contains("workspace clean"), "{stdout}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn l9_missing_registry_with_names_in_the_tree_fails() {
    let root = scratch_workspace("l9-missing");
    plant(&root, "crates/core/src/clean.rs", "clean.rs");
    let (code, stdout, _stderr) = run_lint(&root);
    assert_eq!(code, 1, "missing registry must fail:\n{stdout}");
    assert!(stdout.contains("[L9]"), "{stdout}");
    assert!(stdout.contains("--update-registry"), "{stdout}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn l9_unused_registry_entry_fails() {
    let root = scratch_workspace("l9-unused");
    plant(&root, "crates/core/src/clean.rs", "clean.rs");
    plant_registry(
        &root,
        &["core.fixture.count", "ghost.metric.never_registered"],
    );
    let (code, stdout, _stderr) = run_lint(&root);
    assert_eq!(code, 1, "unused registry entry must fail:\n{stdout}");
    assert!(stdout.contains("[L9]"), "{stdout}");
    assert!(stdout.contains("ghost.metric.never_registered"), "{stdout}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn update_registry_writes_the_file_and_makes_the_tree_clean() {
    let root = scratch_workspace("l9-update");
    plant(&root, "crates/core/src/clean.rs", "clean.rs");
    let (code, stdout, _stderr) = run_lint_args(&root, &["--update-registry"]);
    assert_eq!(code, 0, "regenerated registry must pass:\n{stdout}");
    let written =
        fs::read_to_string(root.join(xtask::REGISTRY_REL)).expect("registry written to disk");
    assert!(written.contains("core.fixture.count"), "{written}");
    // A plain re-run against the regenerated registry stays clean.
    let (code, stdout, _stderr) = run_lint(&root);
    assert_eq!(code, 0, "re-run against fresh registry:\n{stdout}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn l6_upward_cargo_edge_fails_at_the_manifest_line() {
    let root = scratch_workspace("l6-layering");
    // `core` (layer 1) depending on `bench` (layer 4) points up the map.
    fs::create_dir_all(root.join("crates/core")).unwrap();
    fs::create_dir_all(root.join("crates/bench")).unwrap();
    fs::write(
        root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"puf-core\"\n\n[dependencies]\npuf-bench.workspace = true\n",
    )
    .unwrap();
    fs::write(
        root.join("crates/bench/Cargo.toml"),
        "[package]\nname = \"puf-bench\"\n",
    )
    .unwrap();
    let (code, stdout, _stderr) = run_lint(&root);
    assert_eq!(code, 1, "upward dep edge must fail:\n{stdout}");
    assert!(
        stdout.contains("crates/core/Cargo.toml:5: [L6]"),
        "violation pinned to the dependency line:\n{stdout}"
    );
    assert!(stdout.contains("layering violation"), "{stdout}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn report_flag_writes_machine_readable_findings() {
    let root = scratch_workspace("report");
    plant(&root, "crates/protocol/src/l4_panics.rs", "l4_panics.rs");
    let (code, _stdout, _stderr) = run_lint_args(&root, &["--report", "target/LINT.json"]);
    assert_eq!(code, 1);
    let json = fs::read_to_string(root.join("target/LINT.json")).expect("report written");
    assert!(json.contains("\"rule\": \"L4\""), "{json}");
    assert!(json.contains("crates/protocol/src/l4_panics.rs"), "{json}");
    fs::remove_dir_all(&root).ok();
}

#[test]
fn unknown_subcommand_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("spawn xtask binary");
    assert_eq!(out.status.code(), Some(2));
}
