//! The seeded-violation corpus under `tests/fixtures/`.
//!
//! Each fixture file plants violations of one rule; the assertions pin the
//! exact rule ids *and* 1-based line numbers, so a regression that shifts a
//! span or silences a rule fails loudly. Fixtures are fed through
//! [`xtask::lint_source`] with pretend workspace paths, because rule scope
//! (L3/L4 crate lists, crate-root detection) is derived purely from the
//! path — the corpus can probe every scope without living in those crates.

use std::path::Path;
use xtask::{lint_source, Diagnostic, RuleId};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn spans(diags: &[Diagnostic]) -> Vec<(RuleId, usize)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

/// Whether no finding of `rule` fired. Out-of-scope probes can't assert
/// emptiness outright: a fixture's own `allow(…)` annotations become
/// *stale* (L0) when the probed path takes the rule out of scope — that is
/// the audit working as designed, not the rule under test firing.
fn silent(diags: &[Diagnostic], rule: RuleId) -> bool {
    diags.iter().all(|d| d.rule != rule)
}

#[test]
fn l1_bare_unsafe_is_flagged_with_exact_lines() {
    let rel = "crates/bench/src/l1_unsafe.rs";
    let diags = lint_source(rel, &fixture("l1_unsafe.rs"));
    assert_eq!(spans(&diags), vec![(RuleId::L1, 8), (RuleId::L1, 11)]);
    // Rendered form is `path:line: [Lx] message` — what check.sh prints.
    assert_eq!(
        diags[0].to_string(),
        format!("{rel}:8: [L1] `unsafe` without a `// SAFETY:` comment justifying it")
    );
}

#[test]
fn l1_applies_everywhere_even_outside_core_crates() {
    let diags = lint_source(
        "crates/telemetry/src/l1_unsafe.rs",
        &fixture("l1_unsafe.rs"),
    );
    assert_eq!(spans(&diags), vec![(RuleId::L1, 8), (RuleId::L1, 11)]);
}

#[test]
fn l2_crate_root_missing_deny_and_stray_allow() {
    let diags = lint_source("crates/fixture/src/lib.rs", &fixture("l2_root.rs"));
    assert_eq!(spans(&diags), vec![(RuleId::L2, 1), (RuleId::L2, 3)]);
    assert!(diags[0].message.contains("missing `#![deny(unsafe_code)]`"));
    assert!(diags[1].message.contains("outside the allowlist"));
}

#[test]
fn l2_non_root_file_only_flags_the_stray_allow() {
    let diags = lint_source("crates/fixture/src/other.rs", &fixture("l2_root.rs"));
    assert_eq!(spans(&diags), vec![(RuleId::L2, 3)]);
}

#[test]
fn l3_nondeterminism_sources_in_a_result_crate() {
    let diags = lint_source("crates/silicon/src/l3_nondet.rs", &fixture("l3_nondet.rs"));
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::L3, 2),  // HashMap
            (RuleId::L3, 3),  // HashSet
            (RuleId::L3, 6),  // Instant::now
            (RuleId::L3, 7),  // SystemTime
            (RuleId::L3, 12), // thread_rng
        ]
    );
    // The annotated HashMap (line 17) and the #[cfg(test)] module stay quiet.
}

#[test]
fn l3_is_silent_outside_result_crates_and_in_test_paths() {
    let out_of_scope = lint_source(
        "crates/telemetry/src/l3_nondet.rs",
        &fixture("l3_nondet.rs"),
    );
    assert!(silent(&out_of_scope, RuleId::L3), "{out_of_scope:?}");
    let test_path = lint_source(
        "crates/silicon/tests/l3_nondet.rs",
        &fixture("l3_nondet.rs"),
    );
    assert!(silent(&test_path, RuleId::L3), "{test_path:?}");
}

#[test]
fn l4_panic_family_in_library_code() {
    let diags = lint_source("crates/protocol/src/l4_panics.rs", &fixture("l4_panics.rs"));
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::L4, 3), // .unwrap()
            (RuleId::L4, 4), // .expect(
            (RuleId::L4, 6), // panic!
            (RuleId::L4, 8), // unreachable!
        ]
    );
    // unwrap_or / unwrap_or_else, the doc example, the annotated line and
    // the #[cfg(test)] module must not appear above.
}

#[test]
fn l4_exempts_bins_and_non_library_crates() {
    let bin = lint_source("crates/protocol/src/bin/tool.rs", &fixture("l4_panics.rs"));
    assert!(silent(&bin, RuleId::L4), "{bin:?}");
    let non_lib = lint_source("crates/analysis/src/l4_panics.rs", &fixture("l4_panics.rs"));
    assert!(silent(&non_lib, RuleId::L4), "{non_lib:?}");
}

#[test]
fn l5_telemetry_names_at_registration_sites() {
    let diags = lint_source("crates/analysis/src/l5_names.rs", &fixture("l5_names.rs"));
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::L5, 4),  // "BadName"
            (RuleId::L5, 5),  // "nodots"
            (RuleId::L5, 6),  // "Fixture.Span"
            (RuleId::L5, 8),  // "Bad.Progress"
            (RuleId::L5, 15), // "TraceBad"
            (RuleId::L5, 17), // "alsobad"
        ]
    );
    // The wrapped histogram! call (lines 9-12) carries a valid name and
    // must not fire.
    assert!(diags.iter().all(|d| d.line < 9 || d.line > 12));
}

#[test]
fn l0_malformed_annotations_are_themselves_violations() {
    let diags = lint_source(
        "crates/bench/src/l0_annotations.rs",
        &fixture("l0_annotations.rs"),
    );
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::L0, 2), // reasonless allow(L4)
            (RuleId::L0, 4), // unknown rule id L12
            (RuleId::L0, 6), // wrong verb `deny`
            (RuleId::L0, 8), // well-formed allow(L1) suppressing nothing
        ]
    );
    assert!(diags[0].message.contains("must state a reason"));
    assert!(diags[1].message.contains("unknown rule id"));
    assert!(diags[3].message.contains("stale suppression"));
}

#[test]
fn l7_seed_taint_with_exact_lines() {
    let diags = lint_source("crates/silicon/src/l7_taint.rs", &fixture("l7_taint.rs"));
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::L7, 3),  // literal 42
            (RuleId::L7, 7),  // untraceable x * 3 + index
            (RuleId::L7, 12), // loop-invariant master_seed replay
        ]
    );
    assert!(diags[0].message.contains("literal seed"));
    assert!(diags[1].message.contains("untraceable seed"));
    assert!(diags[2].message.contains("loop-invariant reseed"));
    // The named-constant, CLI-seed, derived-lane, loop-dependent,
    // annotated, and #[cfg(test)] shapes must all stay quiet.
}

#[test]
fn l7_is_silent_outside_result_crates() {
    let out_of_scope = lint_source("crates/telemetry/src/l7_taint.rs", &fixture("l7_taint.rs"));
    assert!(silent(&out_of_scope, RuleId::L7), "{out_of_scope:?}");
    let test_path = lint_source("crates/silicon/tests/l7_taint.rs", &fixture("l7_taint.rs"));
    assert!(silent(&test_path, RuleId::L7), "{test_path:?}");
}

#[test]
fn l8_casts_in_hot_paths_with_exact_lines() {
    let diags = lint_source("crates/core/src/bitslice.rs", &fixture("l8_casts.rs"));
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::L8, 3), // x as u32
            (RuleId::L8, 7), // .floor() as i64
        ]
    );
    assert!(diags[0].message.contains("truncating"));
    assert!(diags[1].message.contains("float-to-int"));
    // Widening, pointer casts, the annotated cast, the `use … as` rename,
    // and the #[cfg(test)] module must all stay quiet.
}

#[test]
fn l8_applies_only_to_the_pinned_kernel_files() {
    let off_path = lint_source("crates/core/src/arbiter.rs", &fixture("l8_casts.rs"));
    assert!(silent(&off_path, RuleId::L8), "{off_path:?}");
    let off_crate = lint_source("crates/ml/src/train.rs", &fixture("l8_casts.rs"));
    assert!(silent(&off_crate, RuleId::L8), "{off_crate:?}");
}

#[test]
fn stale_suppressions_are_audited_with_exact_lines() {
    let diags = lint_source("crates/ml/src/stale_allow.rs", &fixture("stale_allow.rs"));
    assert_eq!(
        spans(&diags),
        vec![
            (RuleId::L0, 2), // stale allow-file(L3)
            (RuleId::L0, 7), // stale allow(L4)
        ]
    );
    assert!(diags[0].message.contains("allow-file(L3)"));
    assert!(diags[1].message.contains("allow(L4)"));
    // The earned allow(L4) above the live .unwrap() must not appear.
}

#[test]
fn clean_fixture_passes_in_the_strictest_scope() {
    // crates/core/src/… is in scope for every rule (L1-L5) — the file's
    // near-miss constructs (unwrap_or, strings, comments, doc examples,
    // test-gated code) must not trip any of them.
    let diags = lint_source("crates/core/src/clean.rs", &fixture("clean.rs"));
    assert!(diags.is_empty(), "clean fixture fired: {diags:?}");
}
