//! Logistic regression — the classical arbiter-PUF modeling attack
//! (Rührmair et al.; the paper's Refs. 2-5), kept as a baseline against
//! the MLP and as an alternative enrollment estimator.

use crate::linalg::{dot, Matrix};
use crate::opt::{Lbfgs, Objective, OptimizeResult};
use crate::parallel;
use puf_core::Challenge;

/// L2-regularised logistic regression over transformed challenges, trained
/// with L-BFGS.
#[derive(Clone, Debug, PartialEq)]
pub struct LogisticRegression {
    theta: Vec<f64>,
}

/// Training hyper-parameters for [`LogisticRegression`].
#[derive(Clone, Debug, PartialEq)]
pub struct LogisticConfig {
    /// L2 regularisation strength. Default 1e-4.
    pub alpha: f64,
    /// L-BFGS iteration cap. Default 200.
    pub max_iterations: usize,
    /// L-BFGS gradient tolerance. Default 1e-6.
    pub tolerance: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            alpha: 1e-4,
            max_iterations: 200,
            tolerance: 1e-6,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

struct LogisticObjective<'a> {
    x: &'a Matrix,
    y: &'a [f64],
    alpha: f64,
    workers: usize,
    pool: parallel::Pool<()>,
}

impl Objective for LogisticObjective<'_> {
    fn dim(&self) -> usize {
        self.x.cols()
    }

    fn value_grad(&self, theta: &[f64], grad: &mut [f64]) -> f64 {
        let m = self.x.rows() as f64;
        let x = self.x;
        let y = self.y;
        // Per-row loss/gradient terms fanned out over the deterministic
        // fixed-order chunked reduction: bit-identical at any thread count.
        let mut loss = parallel::reduce_rows(
            x.rows(),
            self.workers,
            grad,
            &self.pool,
            || (),
            |(), range, acc| {
                let mut l = 0.0;
                for i in range {
                    let row = x.row(i);
                    let z = dot(row, theta);
                    let yi = y[i];
                    l += z.max(0.0) - z * yi + (-z.abs()).exp().ln_1p();
                    let err = (sigmoid(z) - yi) / m;
                    for (g, &xk) in acc.iter_mut().zip(row) {
                        *g += err * xk;
                    }
                }
                l
            },
        );
        loss /= m;
        for (g, &t) in grad.iter_mut().zip(theta) {
            *g += self.alpha * t / m;
        }
        loss + 0.5 * self.alpha * dot(theta, theta) / m
    }
}

impl LogisticRegression {
    /// Trains on a design matrix and 0/1 targets; returns the model and the
    /// optimizer diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != x.rows()`.
    pub fn fit(x: &Matrix, y: &[f64], config: &LogisticConfig) -> (Self, OptimizeResult) {
        assert_eq!(y.len(), x.rows(), "target length mismatch");
        let objective = LogisticObjective {
            x,
            y,
            alpha: config.alpha,
            workers: parallel::worker_count(x.rows()),
            pool: parallel::Pool::new(),
        };
        let result = Lbfgs::new()
            .with_max_iterations(config.max_iterations)
            .with_tolerance(config.tolerance)
            .minimize(&objective, vec![0.0; x.cols()]);
        (
            Self {
                theta: result.x.clone(),
            },
            result,
        )
    }

    /// Convenience: fit from challenges and hard responses.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn fit_challenges(
        challenges: &[Challenge],
        responses: &[bool],
        config: &LogisticConfig,
    ) -> (Self, OptimizeResult) {
        assert_eq!(challenges.len(), responses.len(), "length mismatch");
        let x = crate::features::design_matrix(challenges);
        let y = crate::features::encode_bits(responses);
        Self::fit(&x, &y, config)
    }

    /// The fitted coefficients (length `stages + 1`) — proportional to the
    /// PUF's delay weights divided by the noise σ.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Predicted probability for one challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn predict_proba(&self, challenge: &Challenge) -> f64 {
        let phi = challenge.features();
        assert_eq!(phi.len(), self.theta.len(), "stage mismatch");
        sigmoid(phi.dot(&self.theta))
    }

    /// Hard prediction for one challenge.
    pub fn predict(&self, challenge: &Challenge) -> bool {
        self.predict_proba(challenge) > 0.5
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn accuracy(&self, challenges: &[Challenge], responses: &[bool]) -> f64 {
        assert_eq!(challenges.len(), responses.len(), "length mismatch");
        assert!(!challenges.is_empty(), "empty evaluation set");
        // Reused feature buffer: same comparison as `predict`, minus the
        // per-challenge allocation.
        let mut phi = vec![0.0f64; self.theta.len()];
        let correct = challenges
            .iter()
            .zip(responses)
            .filter(|(c, &r)| {
                assert_eq!(c.stages() + 1, self.theta.len(), "stage mismatch");
                c.features_into(&mut phi);
                (sigmoid(dot(&phi, &self.theta)) > 0.5) == r
            })
            .count();
        correct as f64 / challenges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_core::ArbiterPuf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_single_arbiter_puf_from_noiseless_crps() {
        // The classical result: one arbiter PUF is trivially learnable.
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::random(32, &mut rng);
        let train: Vec<Challenge> = (0..2_000)
            .map(|_| Challenge::random(32, &mut rng))
            .collect();
        let labels: Vec<bool> = train.iter().map(|c| puf.response(c)).collect();
        let (model, result) =
            LogisticRegression::fit_challenges(&train, &labels, &LogisticConfig::default());
        assert!(result.value.is_finite());

        let test: Vec<Challenge> = (0..1_000)
            .map(|_| Challenge::random(32, &mut rng))
            .collect();
        let truth: Vec<bool> = test.iter().map(|c| puf.response(c)).collect();
        let acc = model.accuracy(&test, &truth);
        assert!(acc > 0.97, "single-PUF attack accuracy only {acc}");
    }

    #[test]
    fn recovered_theta_is_aligned_with_true_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = ArbiterPuf::random(16, &mut rng);
        let train: Vec<Challenge> = (0..4_000)
            .map(|_| Challenge::random(16, &mut rng))
            .collect();
        let labels: Vec<bool> = train.iter().map(|c| puf.response(c)).collect();
        let (model, _) =
            LogisticRegression::fit_challenges(&train, &labels, &LogisticConfig::default());
        let corr = puf_core::math::pearson(model.theta(), puf.weights());
        assert!(corr > 0.9, "theta/weights correlation only {corr}");
    }

    #[test]
    fn balanced_random_labels_stay_near_chance() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(3);
        let train: Vec<Challenge> = (0..500).map(|_| Challenge::random(16, &mut rng)).collect();
        let labels: Vec<bool> = (0..500).map(|_| rng.gen()).collect();
        let (model, _) =
            LogisticRegression::fit_challenges(&train, &labels, &LogisticConfig::default());
        let test: Vec<Challenge> = (0..1_000)
            .map(|_| Challenge::random(16, &mut rng))
            .collect();
        let truth: Vec<bool> = (0..1_000).map(|_| rng.gen()).collect();
        let acc = model.accuracy(&test, &truth);
        assert!(
            (acc - 0.5).abs() < 0.08,
            "random labels should give ~50 % accuracy, got {acc}"
        );
    }

    #[test]
    fn predict_proba_bounds() {
        let model = LogisticRegression {
            theta: vec![10.0, -10.0, 0.0],
        };
        let c = Challenge::zero(2);
        let p = model.predict_proba(&c);
        assert!((0.0..=1.0).contains(&p));
    }
}
