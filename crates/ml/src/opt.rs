//! Optimizers: limited-memory BFGS with a strong-Wolfe line search (the
//! paper trains its MLP with scikit-learn's `lbfgs` solver), plus Adam and
//! plain gradient descent for ablations.

use crate::linalg::{axpy, dot, norm};
use std::collections::VecDeque;
use std::fmt;

/// A differentiable scalar objective `f: ℝⁿ → ℝ`.
///
/// Implementors fill `grad` (length [`Objective::dim`]) and return the
/// value. All optimizers in this module *minimize*.
pub trait Objective {
    /// Number of parameters.
    fn dim(&self) -> usize;

    /// Writes `∇f(x)` into `grad` and returns `f(x)`.
    fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64;
}

/// Outcome of an optimization run.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizeResult {
    /// The final parameter vector.
    pub x: Vec<f64>,
    /// The objective value at `x`.
    pub value: f64,
    /// Gradient norm at `x`.
    pub grad_norm: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Total number of objective evaluations (including line search).
    pub evaluations: usize,
    /// Whether the gradient tolerance was reached before the iteration cap.
    pub converged: bool,
}

impl fmt::Display for OptimizeResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f = {:.6e}, |∇f| = {:.3e}, {} iterations ({})",
            self.value,
            self.grad_norm,
            self.iterations,
            if self.converged {
                "converged"
            } else {
                "iteration cap"
            }
        )
    }
}

/// Limited-memory BFGS (Nocedal & Wright, Algorithm 7.5) with a strong-Wolfe
/// line search (Algorithms 3.5/3.6).
///
/// ```
/// use puf_ml::opt::{Lbfgs, Objective};
///
/// /// f(x, y) = (x − 3)² + 10·(y + 1)²
/// struct Quad;
/// impl Objective for Quad {
///     fn dim(&self) -> usize { 2 }
///     fn value_grad(&self, x: &[f64], g: &mut [f64]) -> f64 {
///         g[0] = 2.0 * (x[0] - 3.0);
///         g[1] = 20.0 * (x[1] + 1.0);
///         (x[0] - 3.0).powi(2) + 10.0 * (x[1] + 1.0).powi(2)
///     }
/// }
///
/// let result = Lbfgs::new().minimize(&Quad, vec![0.0, 0.0]);
/// assert!(result.converged);
/// assert!((result.x[0] - 3.0).abs() < 1e-6);
/// assert!((result.x[1] + 1.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Lbfgs {
    /// History size (number of stored `(s, y)` pairs). Default 10.
    pub memory: usize,
    /// Maximum outer iterations. Default 200.
    pub max_iterations: usize,
    /// Gradient-norm tolerance (relative to `max(1, ‖x‖)`). Default 1e-6.
    pub tolerance: f64,
    /// Sufficient-decrease constant `c₁`. Default 1e-4.
    pub c1: f64,
    /// Curvature constant `c₂`. Default 0.9.
    pub c2: f64,
    /// Maximum line-search evaluations per iteration. Default 30.
    pub max_line_search: usize,
}

impl Lbfgs {
    /// L-BFGS with the default hyper-parameters.
    pub fn new() -> Self {
        Self {
            memory: 10,
            max_iterations: 200,
            tolerance: 1e-6,
            c1: 1e-4,
            c2: 0.9,
            max_line_search: 30,
        }
    }

    /// Sets the iteration cap (builder style).
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the gradient tolerance (builder style).
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Minimizes `obj` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != obj.dim()`.
    pub fn minimize<O: Objective>(&self, obj: &O, x0: Vec<f64>) -> OptimizeResult {
        assert_eq!(x0.len(), obj.dim(), "x0 has wrong dimension");
        let n = x0.len();
        let mut x = x0;
        let mut grad = vec![0.0; n];
        let mut evaluations = 1;
        let mut value = obj.value_grad(&x, &mut grad);
        let mut history: VecDeque<(Vec<f64>, Vec<f64>, f64)> = VecDeque::new(); // (s, y, 1/yᵀs)

        let mut iterations = 0;
        let mut converged = norm(&grad) <= self.tolerance * norm(&x).max(1.0);
        let _span = puf_telemetry::span!("ml.train.lbfgs");
        let _trace = puf_telemetry::trace_span!("ml.train.lbfgs");

        while !converged && iterations < self.max_iterations {
            let _step = puf_telemetry::trace_span!("ml.train.lbfgs.step");
            // Two-loop recursion for the search direction d = −H·∇f.
            let mut d: Vec<f64> = grad.iter().map(|g| -g).collect();
            let mut alphas = Vec::with_capacity(history.len());
            for (s, y, rho) in history.iter().rev() {
                let alpha = rho * dot(s, &d);
                axpy(-alpha, y, &mut d);
                alphas.push(alpha);
            }
            if let Some((s, y, _)) = history.back() {
                let gamma = dot(s, y) / dot(y, y);
                for di in &mut d {
                    *di *= gamma;
                }
            }
            for ((s, y, rho), &alpha) in history.iter().zip(alphas.iter().rev()) {
                let beta = rho * dot(y, &d);
                axpy(alpha - beta, s, &mut d);
            }

            // Ensure a descent direction; fall back to steepest descent.
            let mut dg = dot(&d, &grad);
            if dg >= 0.0 {
                d = grad.iter().map(|g| -g).collect();
                dg = -dot(&grad, &grad);
                history.clear();
            }

            // Strong Wolfe line search.
            let ls = self.line_search(obj, &x, value, &grad, &d, dg);
            evaluations += ls.evaluations;
            let Some((alpha, new_value, new_x, new_grad)) = ls.accepted else {
                // Line search failed — stop with the current iterate.
                break;
            };
            let _ = alpha;

            // Update the history.
            let s: Vec<f64> = new_x.iter().zip(&x).map(|(a, b)| a - b).collect();
            let y: Vec<f64> = new_grad.iter().zip(&grad).map(|(a, b)| a - b).collect();
            let ys = dot(&y, &s);
            if ys > 1e-10 * norm(&y) * norm(&s) {
                if history.len() == self.memory {
                    history.pop_front();
                }
                history.push_back((s, y, 1.0 / ys));
            }

            x = new_x;
            grad = new_grad;
            value = new_value;
            iterations += 1;
            puf_telemetry::counter!("ml.train.lbfgs.iterations").inc();
            puf_telemetry::trace!("ml.train.lbfgs.loss").push(value);
            converged = norm(&grad) <= self.tolerance * norm(&x).max(1.0);
        }

        OptimizeResult {
            grad_norm: norm(&grad),
            x,
            value,
            iterations,
            evaluations,
            converged,
        }
    }

    /// Strong-Wolfe line search along `d` from `x`. Returns the accepted
    /// step (if any) together with the point's value and gradient so the
    /// caller never re-evaluates.
    fn line_search<O: Objective>(
        &self,
        obj: &O,
        x: &[f64],
        f0: f64,
        _g0: &[f64],
        d: &[f64],
        dg0: f64,
    ) -> LineSearchOutcome {
        let n = x.len();
        let mut evaluations = 0;
        let eval = |alpha: f64| -> (f64, Vec<f64>, Vec<f64>) {
            let mut xt = x.to_vec();
            axpy(alpha, d, &mut xt);
            let mut gt = vec![0.0; n];
            let ft = obj.value_grad(&xt, &mut gt);
            (ft, xt, gt)
        };

        let mut alpha_prev = 0.0;
        let mut f_prev = f0;
        let mut dg_prev = dg0;
        let mut alpha = 1.0;
        let mut bracket: Option<(f64, f64, f64, f64, f64, f64)> = None; // (lo, f_lo, dg_lo, hi, f_hi, dg_hi)

        for i in 0..self.max_line_search {
            let (ft, xt, gt) = eval(alpha);
            evaluations += 1;
            let dgt = dot(&gt, d);
            if ft > f0 + self.c1 * alpha * dg0 || (i > 0 && ft >= f_prev) {
                bracket = Some((alpha_prev, f_prev, dg_prev, alpha, ft, dgt));
                break;
            }
            if dgt.abs() <= -self.c2 * dg0 {
                return LineSearchOutcome {
                    accepted: Some((alpha, ft, xt, gt)),
                    evaluations,
                };
            }
            if dgt >= 0.0 {
                bracket = Some((alpha, ft, dgt, alpha_prev, f_prev, dg_prev));
                break;
            }
            alpha_prev = alpha;
            f_prev = ft;
            dg_prev = dgt;
            alpha *= 2.0;
        }

        let Some((mut lo, mut f_lo, mut dg_lo, mut hi, mut f_hi, _dg_hi)) = bracket else {
            return LineSearchOutcome {
                accepted: None,
                evaluations,
            };
        };

        // Zoom (bisection variant — robust, a couple extra evals at most).
        for _ in 0..self.max_line_search {
            let alpha = 0.5 * (lo + hi);
            let (ft, xt, gt) = eval(alpha);
            evaluations += 1;
            let dgt = dot(&gt, d);
            if ft > f0 + self.c1 * alpha * dg0 || ft >= f_lo {
                hi = alpha;
                f_hi = ft;
            } else {
                if dgt.abs() <= -self.c2 * dg0 {
                    return LineSearchOutcome {
                        accepted: Some((alpha, ft, xt, gt)),
                        evaluations,
                    };
                }
                if dgt * (hi - lo) >= 0.0 {
                    hi = lo;
                    f_hi = f_lo;
                }
                lo = alpha;
                f_lo = ft;
                dg_lo = dgt;
            }
            if (hi - lo).abs() < 1e-12 {
                break;
            }
        }
        let _ = (dg_lo, f_hi);

        // Accept the best point seen in the bracket if it at least decreases.
        let (ft, xt, gt) = eval(lo.max(1e-16));
        evaluations += 1;
        if ft < f0 {
            return LineSearchOutcome {
                accepted: Some((lo, ft, xt, gt)),
                evaluations,
            };
        }
        LineSearchOutcome {
            accepted: None,
            evaluations,
        }
    }
}

impl Default for Lbfgs {
    fn default() -> Self {
        Self::new()
    }
}

struct LineSearchOutcome {
    accepted: Option<(f64, f64, Vec<f64>, Vec<f64>)>,
    evaluations: usize,
}

/// Full-batch Adam (Kingma & Ba) — the ablation optimizer.
#[derive(Clone, Debug, PartialEq)]
pub struct Adam {
    /// Step size. Default 1e-2.
    pub learning_rate: f64,
    /// First-moment decay. Default 0.9.
    pub beta1: f64,
    /// Second-moment decay. Default 0.999.
    pub beta2: f64,
    /// Numerical-stability epsilon. Default 1e-8.
    pub epsilon: f64,
    /// Number of steps. Default 500.
    pub max_iterations: usize,
    /// Gradient-norm stopping tolerance. Default 1e-6.
    pub tolerance: f64,
}

impl Adam {
    /// Adam with the default hyper-parameters.
    pub fn new() -> Self {
        Self {
            learning_rate: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            max_iterations: 500,
            tolerance: 1e-6,
        }
    }

    /// Sets the step count (builder style).
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the learning rate (builder style).
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Minimizes `obj` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != obj.dim()`.
    pub fn minimize<O: Objective>(&self, obj: &O, x0: Vec<f64>) -> OptimizeResult {
        assert_eq!(x0.len(), obj.dim(), "x0 has wrong dimension");
        let n = x0.len();
        let mut x = x0;
        let mut grad = vec![0.0; n];
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let mut value = obj.value_grad(&x, &mut grad);
        let mut evaluations = 1;
        let mut iterations = 0;
        let mut converged = norm(&grad) <= self.tolerance;
        let _span = puf_telemetry::span!("ml.train.adam");
        let _trace = puf_telemetry::trace_span!("ml.train.adam");

        while !converged && iterations < self.max_iterations {
            let t = (iterations + 1) as i32;
            for i in 0..n {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * grad[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * grad[i] * grad[i];
                let m_hat = m[i] / (1.0 - self.beta1.powi(t));
                let v_hat = v[i] / (1.0 - self.beta2.powi(t));
                x[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            value = obj.value_grad(&x, &mut grad);
            evaluations += 1;
            iterations += 1;
            puf_telemetry::counter!("ml.train.adam.iterations").inc();
            puf_telemetry::trace!("ml.train.adam.loss").push(value);
            converged = norm(&grad) <= self.tolerance;
        }

        OptimizeResult {
            grad_norm: norm(&grad),
            x,
            value,
            iterations,
            evaluations,
            converged,
        }
    }
}

impl Default for Adam {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain gradient descent with a fixed step — baseline of baselines.
#[derive(Clone, Debug, PartialEq)]
pub struct GradientDescent {
    /// Step size. Default 1e-2.
    pub learning_rate: f64,
    /// Number of steps. Default 1000.
    pub max_iterations: usize,
    /// Gradient-norm stopping tolerance. Default 1e-6.
    pub tolerance: f64,
}

impl GradientDescent {
    /// Gradient descent with default hyper-parameters.
    pub fn new() -> Self {
        Self {
            learning_rate: 1e-2,
            max_iterations: 1000,
            tolerance: 1e-6,
        }
    }

    /// Minimizes `obj` starting from `x0`.
    ///
    /// # Panics
    ///
    /// Panics if `x0.len() != obj.dim()`.
    pub fn minimize<O: Objective>(&self, obj: &O, x0: Vec<f64>) -> OptimizeResult {
        assert_eq!(x0.len(), obj.dim(), "x0 has wrong dimension");
        let mut x = x0;
        let mut grad = vec![0.0; x.len()];
        let mut value = obj.value_grad(&x, &mut grad);
        let mut evaluations = 1;
        let mut iterations = 0;
        let mut converged = norm(&grad) <= self.tolerance;
        let _span = puf_telemetry::span!("ml.train.gd");
        let _trace = puf_telemetry::trace_span!("ml.train.gd");
        while !converged && iterations < self.max_iterations {
            axpy(-self.learning_rate, &grad.clone(), &mut x);
            value = obj.value_grad(&x, &mut grad);
            evaluations += 1;
            iterations += 1;
            puf_telemetry::counter!("ml.train.gd.iterations").inc();
            puf_telemetry::trace!("ml.train.gd.loss").push(value);
            converged = norm(&grad) <= self.tolerance;
        }
        OptimizeResult {
            grad_norm: norm(&grad),
            x,
            value,
            iterations,
            evaluations,
            converged,
        }
    }
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rosenbrock, the classic non-convex line-search stress test.
    struct Rosenbrock;

    impl Objective for Rosenbrock {
        fn dim(&self) -> usize {
            2
        }
        fn value_grad(&self, x: &[f64], g: &mut [f64]) -> f64 {
            let (a, b) = (1.0, 100.0);
            g[0] = -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]);
            g[1] = 2.0 * b * (x[1] - x[0] * x[0]);
            (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2)
        }
    }

    struct Quadratic {
        center: Vec<f64>,
    }

    impl Objective for Quadratic {
        fn dim(&self) -> usize {
            self.center.len()
        }
        fn value_grad(&self, x: &[f64], g: &mut [f64]) -> f64 {
            let mut f = 0.0;
            for i in 0..x.len() {
                let scale = (i + 1) as f64;
                let d = x[i] - self.center[i];
                g[i] = 2.0 * scale * d;
                f += scale * d * d;
            }
            f
        }
    }

    #[test]
    fn lbfgs_solves_rosenbrock() {
        let result = Lbfgs::new()
            .with_max_iterations(500)
            .minimize(&Rosenbrock, vec![-1.2, 1.0]);
        assert!(result.converged, "{result}");
        assert!((result.x[0] - 1.0).abs() < 1e-5, "{:?}", result.x);
        assert!((result.x[1] - 1.0).abs() < 1e-5, "{:?}", result.x);
    }

    #[test]
    fn lbfgs_solves_scaled_quadratic_quickly() {
        let center: Vec<f64> = (0..20).map(|i| (i as f64) * 0.1 - 1.0).collect();
        let obj = Quadratic {
            center: center.clone(),
        };
        let result = Lbfgs::new().minimize(&obj, vec![0.0; 20]);
        assert!(result.converged);
        assert!(result.iterations < 100, "{} iterations", result.iterations);
        for (got, want) in result.x.iter().zip(&center) {
            assert!((got - want).abs() < 1e-5);
        }
    }

    #[test]
    fn lbfgs_is_noop_at_optimum() {
        let obj = Quadratic {
            center: vec![0.0, 0.0],
        };
        let result = Lbfgs::new().minimize(&obj, vec![0.0, 0.0]);
        assert!(result.converged);
        assert_eq!(result.iterations, 0);
    }

    #[test]
    fn adam_reaches_quadratic_minimum() {
        let obj = Quadratic {
            center: vec![1.0, -2.0, 0.5],
        };
        let result = Adam::new()
            .with_learning_rate(0.05)
            .with_max_iterations(3_000)
            .minimize(&obj, vec![0.0; 3]);
        for (got, want) in result.x.iter().zip(&[1.0, -2.0, 0.5]) {
            assert!((got - want).abs() < 1e-3, "{:?}", result.x);
        }
    }

    #[test]
    fn gradient_descent_converges_on_easy_quadratic() {
        let obj = Quadratic { center: vec![2.0] };
        let result = GradientDescent::new().minimize(&obj, vec![0.0]);
        assert!((result.x[0] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn result_display() {
        let obj = Quadratic { center: vec![0.0] };
        let result = Lbfgs::new().minimize(&obj, vec![1.0]);
        assert!(result.to_string().contains("iterations"));
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn minimize_rejects_bad_x0() {
        Lbfgs::new().minimize(&Rosenbrock, vec![0.0; 3]);
    }
}
