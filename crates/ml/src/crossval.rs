//! K-fold cross-validation utilities for attack-model selection.
//!
//! The paper tunes its 35-25-25 network by hand ("a larger network always
//! leads to longer training time, but doesn't always result in higher
//! accuracy", §2.3); cross-validation is how a practitioner would make that
//! comparison honestly without burning the test set.

use rand::Rng;

/// Index split of one fold: everything not in `validation` is training.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fold {
    /// Indices of the training samples.
    pub train: Vec<usize>,
    /// Indices of the held-out validation samples.
    pub validation: Vec<usize>,
}

/// Produces `k` shuffled folds over `n` samples. Every sample appears in
/// exactly one validation set; fold sizes differ by at most one.
///
/// # Panics
///
/// Panics if `k < 2` or `k > n`.
pub fn k_folds<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<Fold> {
    assert!(k >= 2, "need at least two folds");
    assert!(k <= n, "more folds than samples");
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let validation: Vec<usize> = order[start..start + len].to_vec();
        let train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + len..])
            .copied()
            .collect();
        folds.push(Fold { train, validation });
        start += len;
    }
    folds
}

/// Runs `evaluate(train_indices, validation_indices) -> score` on every
/// fold and returns `(mean, standard deviation)` of the scores.
///
/// # Panics
///
/// Panics if `folds` is empty.
pub fn cross_validate<F>(folds: &[Fold], mut evaluate: F) -> (f64, f64)
where
    F: FnMut(&[usize], &[usize]) -> f64,
{
    assert!(!folds.is_empty(), "no folds");
    let scores: Vec<f64> = folds
        .iter()
        .map(|f| evaluate(&f.train, &f.validation))
        .collect();
    let mean = scores.iter().sum::<f64>() / scores.len() as f64;
    let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / scores.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folds_partition_the_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let folds = k_folds(103, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = [false; 103];
        for f in &folds {
            assert_eq!(f.train.len() + f.validation.len(), 103);
            for &i in &f.validation {
                assert!(!seen[i], "sample {i} in two validation sets");
                seen[i] = true;
            }
            // Disjointness inside one fold.
            for &i in &f.validation {
                assert!(!f.train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s), "some sample never validated");
        // Sizes differ by at most one.
        let sizes: Vec<usize> = folds.iter().map(|f| f.validation.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn cross_validate_aggregates_scores() {
        let mut rng = StdRng::seed_from_u64(2);
        let folds = k_folds(10, 5, &mut rng);
        let (mean, sd) = cross_validate(&folds, |train, validation| {
            (train.len() + validation.len()) as f64
        });
        assert!((mean - 10.0).abs() < 1e-12);
        assert!(sd.abs() < 1e-12);
    }

    #[test]
    fn cross_validated_logreg_matches_holdout_estimate() {
        use crate::logreg::{LogisticConfig, LogisticRegression};
        use puf_core::{challenge::random_challenges, ArbiterPuf};
        let mut rng = StdRng::seed_from_u64(3);
        let puf = ArbiterPuf::random(16, &mut rng);
        let challenges = random_challenges(16, 1_500, &mut rng);
        let labels: Vec<bool> = challenges.iter().map(|c| puf.response(c)).collect();
        let folds = k_folds(challenges.len(), 5, &mut rng);
        let (mean, sd) = cross_validate(&folds, |train, validation| {
            let tc: Vec<_> = train.iter().map(|&i| challenges[i]).collect();
            let tl: Vec<_> = train.iter().map(|&i| labels[i]).collect();
            let (model, _) =
                LogisticRegression::fit_challenges(&tc, &tl, &LogisticConfig::default());
            let vc: Vec<_> = validation.iter().map(|&i| challenges[i]).collect();
            let vl: Vec<_> = validation.iter().map(|&i| labels[i]).collect();
            model.accuracy(&vc, &vl)
        });
        assert!(mean > 0.9, "CV accuracy {mean} ± {sd}");
        assert!(sd < 0.1, "folds should agree: sd {sd}");
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_fold_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        k_folds(10, 1, &mut rng);
    }
}
