//! # puf-ml
//!
//! From-scratch machine learning for PUF modeling, replacing the paper's
//! scikit-learn dependency (the known reproduction gate for Rust):
//!
//! - [`linalg`] — dense matrices, Cholesky solves, vector kernels.
//! - [`gemm`] — cache-blocked GEMM kernels with packed panels.
//! - [`fastmath`] — branch-free vectorizable tanh for the activation pass.
//! - [`parallel`] — deterministic chunked row-parallel reduction.
//! - [`features`] — transformed-challenge design matrices.
//! - [`linreg`] — ridge linear regression (the enrollment estimator, §4).
//! - [`logreg`] — logistic regression (the classical attack, Refs. 2-5).
//! - [`mlp`] — the 35-25-25 multi-layer perceptron classifier (§2.3).
//! - [`opt`] — L-BFGS with strong-Wolfe line search, Adam, gradient descent.
//! - [`metrics`] — accuracy, confusion counts, Hamming fractions.
//!
//! ```
//! use puf_core::{ArbiterPuf, Challenge};
//! use puf_ml::logreg::{LogisticConfig, LogisticRegression};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Model a single arbiter PUF from noiseless CRPs (the classical attack).
//! let mut rng = StdRng::seed_from_u64(1);
//! let puf = ArbiterPuf::random(32, &mut rng);
//! let train: Vec<Challenge> = (0..1500).map(|_| Challenge::random(32, &mut rng)).collect();
//! let labels: Vec<bool> = train.iter().map(|c| puf.response(c)).collect();
//! let (model, _diag) = LogisticRegression::fit_challenges(&train, &labels, &LogisticConfig::default());
//! let c = Challenge::random(32, &mut rng);
//! let _guess = model.predict(&c);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cmaes;
pub mod crossval;
pub mod fastmath;
pub mod features;
pub mod gemm;
pub mod linalg;
pub mod linreg;
pub mod logreg;
pub mod metrics;
pub mod mlp;
pub mod opt;
pub mod parallel;
pub mod probit;

pub use linalg::Matrix;
pub use linreg::LinearRegression;
pub use logreg::{LogisticConfig, LogisticRegression};
pub use metrics::{accuracy, auc, Confusion};
pub use mlp::{Mlp, MlpConfig, SgdConfig};
pub use opt::{Adam, GradientDescent, Lbfgs, Objective, OptimizeResult};
pub use probit::ProbitRegression;
