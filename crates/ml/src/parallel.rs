//! Deterministic, chunked row-parallel reduction for training objectives.
//!
//! Every full-batch loss/gradient in this crate is a sum of independent
//! per-row contributions. This module fans that sum out over scoped worker
//! threads while keeping the result **bit-identical at any thread count**:
//!
//! * rows are split into a fixed number of chunks that depends only on the
//!   row count ([`chunk_count`]), never on the worker count;
//! * each chunk's partial (loss scalar + flat accumulator vector) is
//!   computed independently, with per-row streaming in ascending row order;
//! * partials are reduced **in ascending chunk order** on the calling
//!   thread, so the floating-point summation tree is a pure function of
//!   the data shape.
//!
//! Changing `PUF_THREADS` therefore changes wall-clock time, not a single
//! bit of any trained model, figure, or ablation output (test-enforced in
//! `crates/ml/tests/kernels.rs`).
//!
//! Unlike the harness-level `puf_bench::par` fan-out (which needs `unsafe`
//! to scatter arbitrary results into one buffer), this reduction is plain
//! safe Rust: each worker owns its chunk partials outright and hands them
//! back through the scoped-thread join. A panic inside the closure is
//! re-raised on the caller via [`std::panic::resume_unwind`]; partial
//! buffers are ordinary `Vec`s and are simply dropped.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::Mutex;

/// Minimum rows per chunk: below this, parallelism overhead beats the win.
const MIN_CHUNK_ROWS: usize = 1024;
/// Chunk-count ceiling: bounds the memory held in per-chunk partials.
const MAX_CHUNKS: usize = 64;

/// Number of fixed reduction chunks for `rows` rows — a function of the
/// data size only, never of the machine, so the summation order (and thus
/// every trained model) is reproducible across hosts and thread counts.
pub fn chunk_count(rows: usize) -> usize {
    (rows / MIN_CHUNK_ROWS).clamp(1, MAX_CHUNKS)
}

/// The half-open row range of chunk `c` of `chunks` over `rows` rows.
/// Chunk sizes differ by at most one row.
pub fn chunk_range(rows: usize, chunks: usize, c: usize) -> Range<usize> {
    (c * rows / chunks)..((c + 1) * rows / chunks)
}

/// Worker threads to use for a `rows`-row reduction: the `PUF_THREADS`
/// environment variable if set to a positive integer, otherwise
/// `available_parallelism`, capped at [`chunk_count`] (more workers than
/// chunks would idle).
pub fn worker_count(rows: usize) -> usize {
    let cpus = std::env::var("PUF_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        });
    cpus.clamp(1, chunk_count(rows))
}

/// A small free-list of per-worker workspaces, reused across the hundreds
/// of objective evaluations one L-BFGS run performs so activation and
/// gradient buffers are allocated once per training run, not once per
/// gradient call.
///
/// Reuse order never affects results: workspaces are scratch that every
/// chunk pass fully overwrites.
#[derive(Debug, Default)]
pub struct Pool<W>(Mutex<Vec<W>>);

impl<W> Pool<W> {
    /// An empty pool.
    pub fn new() -> Self {
        Pool(Mutex::new(Vec::new()))
    }

    fn take(&self) -> Option<W> {
        match self.0.lock() {
            Ok(mut v) => v.pop(),
            // A poisoned pool just means a previous reduction panicked;
            // scratch buffers are still perfectly reusable.
            Err(poisoned) => poisoned.into_inner().pop(),
        }
    }

    fn put(&self, w: W) {
        match self.0.lock() {
            Ok(mut v) => v.push(w),
            Err(poisoned) => poisoned.into_inner().push(w),
        }
    }
}

/// Runs `f` over every fixed chunk of `rows` rows on up to `workers`
/// threads and reduces the partials in ascending chunk order: returns the
/// summed loss and adds each chunk's accumulator into `acc` element-wise
/// (`acc` is zeroed first).
///
/// `f(ws, range, chunk_acc)` must write the chunk's contribution into
/// `chunk_acc` (pre-zeroed, same length as `acc`) and return the chunk's
/// loss term. Workspaces come from `pool` when available, else from
/// `make_ws`; they are returned to the pool afterwards.
///
/// The single-worker path runs the identical chunk decomposition and
/// reduction order, so results are bit-identical for every `workers`
/// value — the property the thread-count determinism tests pin down.
///
/// # Panics
///
/// Re-raises a panic from `f` (after all workers have been joined).
pub fn reduce_rows<W, M, F>(
    rows: usize,
    workers: usize,
    acc: &mut [f64],
    pool: &Pool<W>,
    make_ws: M,
    f: F,
) -> f64
where
    W: Send,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, Range<usize>, &mut [f64]) -> f64 + Sync,
{
    let chunks = chunk_count(rows);
    let workers = workers.clamp(1, chunks);
    puf_telemetry::gauge!("ml.train.reduce.workers").set(workers as f64);
    puf_telemetry::counter!("ml.train.reduce.chunks").add(chunks as u64);
    let _trace = puf_telemetry::trace_span!("ml.train.reduce");
    acc.fill(0.0);

    if workers == 1 {
        let mut ws = pool.take().unwrap_or_else(&make_ws);
        let mut buf = vec![0.0; acc.len()];
        let mut loss = 0.0;
        for c in 0..chunks {
            buf.fill(0.0);
            loss += f(&mut ws, chunk_range(rows, chunks, c), &mut buf);
            for (a, &v) in acc.iter_mut().zip(&buf) {
                *a += v;
            }
        }
        pool.put(ws);
        return loss;
    }

    // Static strided ownership: worker w computes chunks w, w+W, w+2W, …
    // Chunks are near-equal in rows, so striding balances load without any
    // shared cursor; each worker hands its partials back through join.
    let acc_len = acc.len();
    let worker_results: Vec<Vec<(usize, f64, Vec<f64>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let make_ws = &make_ws;
                let f = &f;
                scope.spawn(move || {
                    // Each worker thread records into its own trace lane, so
                    // the fan-out renders as parallel tracks in chrome://tracing.
                    let _lane = puf_telemetry::trace_span!("ml.train.reduce.worker");
                    let mut ws = pool.take().unwrap_or_else(make_ws);
                    let mut partials = Vec::new();
                    let mut c = w;
                    while c < chunks {
                        let mut buf = vec![0.0; acc_len];
                        let loss = f(&mut ws, chunk_range(rows, chunks, c), &mut buf);
                        partials.push((c, loss, buf));
                        c += workers;
                    }
                    pool.put(ws);
                    partials
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise the worker's own panic payload on the caller.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    // Fixed-order reduction: chunk 0 first, regardless of which worker
    // produced it or when it finished.
    let mut slots: Vec<Option<(f64, Vec<f64>)>> = (0..chunks).map(|_| None).collect();
    for partials in worker_results {
        for (c, loss, buf) in partials {
            slots[c] = Some((loss, buf));
        }
    }
    let mut loss = 0.0;
    for (l, buf) in slots.into_iter().flatten() {
        debug_assert_eq!(buf.len(), acc_len);
        loss += l;
        for (a, &v) in acc.iter_mut().zip(&buf) {
            *a += v;
        }
    }
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition_the_rows() {
        for rows in [1usize, 5, 1023, 1024, 1025, 70_000, 1_000_000] {
            let k = chunk_count(rows);
            let mut next = 0;
            for c in 0..k {
                let r = chunk_range(rows, k, c);
                assert_eq!(r.start, next, "gap before chunk {c} at rows={rows}");
                assert!(!r.is_empty() || rows == 0);
                next = r.end;
            }
            assert_eq!(next, rows);
        }
    }

    #[test]
    fn chunk_count_depends_only_on_rows() {
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_count(1023), 1);
        assert_eq!(chunk_count(4096), 4);
        assert_eq!(chunk_count(usize::MAX / 2), MAX_CHUNKS);
    }

    /// The core guarantee: identical bits for every worker count.
    #[test]
    fn reduction_is_bit_identical_across_worker_counts() {
        let rows = 10_000;
        let data: Vec<f64> = (0..rows).map(|i| ((i * 37) % 101) as f64 * 0.013).collect();
        let run = |workers: usize| {
            let mut acc = vec![0.0; 3];
            let pool = Pool::new();
            let loss = reduce_rows(
                rows,
                workers,
                &mut acc,
                &pool,
                Vec::<f64>::new,
                |_ws, range, acc| {
                    let mut l = 0.0;
                    for i in range {
                        let v = data[i];
                        acc[0] += v;
                        acc[1] += v * v;
                        acc[2] += v.sin();
                        l += v * 0.5;
                    }
                    l
                },
            );
            (
                loss.to_bits(),
                acc.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            )
        };
        let base = run(1);
        for workers in [2, 3, 7, 64] {
            assert_eq!(run(workers), base, "workers={workers} diverged");
        }
    }

    #[test]
    fn pool_reuses_workspaces() {
        let pool: Pool<Vec<u8>> = Pool::new();
        pool.put(vec![1, 2, 3]);
        assert_eq!(pool.take(), Some(vec![1, 2, 3]));
        assert_eq!(pool.take(), None);
    }

    #[test]
    fn worker_panic_propagates() {
        let pool: Pool<()> = Pool::new();
        let mut acc = vec![0.0; 1];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reduce_rows(
                8192,
                4,
                &mut acc,
                &pool,
                || (),
                |_, range, _| {
                    if range.start >= 4096 {
                        panic!("chunk failure injected by test");
                    }
                    0.0
                },
            )
        }));
        assert!(result.is_err());
    }
}
