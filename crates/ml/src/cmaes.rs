//! Covariance-matrix-adaptation evolution strategy (CMA-ES).
//!
//! The paper's Ref. 9 (Becker, CHES 2015) breaks XOR arbiter PUFs with a
//! *reliability-based* attack whose search engine is CMA-ES — the attack's
//! fitness (a correlation) is non-differentiable, so gradient methods don't
//! apply. This is a compact (μ/μ_w, λ) implementation with rank-μ update,
//! cumulation for σ (CSA) and the rank-one path, following Hansen's
//! tutorial; diagonal-plus-full covariance with eigendecomposition by
//! Jacobi rotations (dimensions here are ≤ a few hundred).

use rand::Rng;
use std::fmt;

/// Configuration of a CMA-ES run.
#[derive(Clone, Debug, PartialEq)]
pub struct CmaesConfig {
    /// Initial step size σ₀. Default 0.3.
    pub sigma: f64,
    /// Population size λ; 0 = the default `4 + ⌊3 ln d⌋`.
    pub population: usize,
    /// Generation cap. Default 300.
    pub max_generations: usize,
    /// Stop when σ falls below this. Default 1e-8.
    pub tol_sigma: f64,
}

impl Default for CmaesConfig {
    fn default() -> Self {
        Self {
            sigma: 0.3,
            population: 0,
            max_generations: 300,
            tol_sigma: 1e-8,
        }
    }
}

/// Result of a CMA-ES run (maximisation).
#[derive(Clone, Debug, PartialEq)]
pub struct CmaesResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Its fitness.
    pub fitness: f64,
    /// Generations executed.
    pub generations: usize,
}

impl fmt::Display for CmaesResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fitness {:.6} after {} generations",
            self.fitness, self.generations
        )
    }
}

/// Symmetric eigendecomposition by cyclic Jacobi; returns (eigenvalues,
/// row-major eigenvector matrix `B` with eigenvectors in columns).
fn jacobi_eigen(mut a: Vec<f64>, d: usize) -> (Vec<f64>, Vec<f64>) {
    let mut b = vec![0.0; d * d];
    for i in 0..d {
        b[i * d + i] = 1.0;
    }
    for _sweep in 0..30 {
        let mut off = 0.0;
        for i in 0..d {
            for j in (i + 1)..d {
                off += a[i * d + j] * a[i * d + j];
            }
        }
        if off < 1e-20 {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = a[p * d + q];
                if apq.abs() < 1e-18 {
                    continue;
                }
                let app = a[p * d + p];
                let aqq = a[q * d + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..d {
                    let akp = a[k * d + p];
                    let akq = a[k * d + q];
                    a[k * d + p] = c * akp - s * akq;
                    a[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = a[p * d + k];
                    let aqk = a[q * d + k];
                    a[p * d + k] = c * apk - s * aqk;
                    a[q * d + k] = s * apk + c * aqk;
                }
                for k in 0..d {
                    let bkp = b[k * d + p];
                    let bkq = b[k * d + q];
                    b[k * d + p] = c * bkp - s * bkq;
                    b[k * d + q] = s * bkp + c * bkq;
                }
            }
        }
    }
    let eig: Vec<f64> = (0..d).map(|i| a[i * d + i].max(1e-20)).collect();
    (eig, b)
}

/// Maximises `fitness` over ℝ^d starting from `x0`.
///
/// # Panics
///
/// Panics if `x0` is empty.
pub fn maximize<R, F>(fitness: F, x0: Vec<f64>, config: &CmaesConfig, rng: &mut R) -> CmaesResult
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    let d = x0.len();
    assert!(d > 0, "x0 must be non-empty");
    let lambda = if config.population == 0 {
        4 + (3.0 * (d as f64).ln()).floor() as usize
    } else {
        config.population
    };
    let mu = lambda / 2;
    // Log-rank recombination weights.
    let mut weights: Vec<f64> = (0..mu)
        .map(|i| ((mu as f64 + 0.5).ln() - ((i + 1) as f64).ln()).max(0.0))
        .collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= wsum;
    }
    let mu_eff = 1.0 / weights.iter().map(|w| w * w).sum::<f64>();
    let d_f = d as f64;
    let cc = (4.0 + mu_eff / d_f) / (d_f + 4.0 + 2.0 * mu_eff / d_f);
    let cs = (mu_eff + 2.0) / (d_f + mu_eff + 5.0);
    let c1 = 2.0 / ((d_f + 1.3) * (d_f + 1.3) + mu_eff);
    let cmu =
        (1.0 - c1).min(2.0 * (mu_eff - 2.0 + 1.0 / mu_eff) / ((d_f + 2.0) * (d_f + 2.0) + mu_eff));
    let damps = 1.0 + 2.0 * ((mu_eff - 1.0) / (d_f + 1.0)).sqrt().max(0.0) + cs;
    let chi_n = d_f.sqrt() * (1.0 - 1.0 / (4.0 * d_f) + 1.0 / (21.0 * d_f * d_f));

    let mut mean = x0;
    let mut sigma = config.sigma;
    let mut cov = vec![0.0; d * d];
    for i in 0..d {
        cov[i * d + i] = 1.0;
    }
    let mut ps = vec![0.0; d];
    let mut pc = vec![0.0; d];
    let mut best_x = mean.clone();
    let mut best_fitness = fitness(&mean);
    let mut generations = 0;

    for gen in 0..config.max_generations {
        generations = gen + 1;
        let (eig, b) = jacobi_eigen(cov.clone(), d);
        let sqrt_eig: Vec<f64> = eig.iter().map(|e| e.sqrt()).collect();

        // Sample λ candidates: x = mean + σ·B·diag(√eig)·z.
        let mut candidates: Vec<(f64, Vec<f64>, Vec<f64>)> = Vec::with_capacity(lambda);
        for _ in 0..lambda {
            let z: Vec<f64> = (0..d)
                .map(|_| puf_core::rngx::standard_normal(rng))
                .collect();
            let mut y = vec![0.0; d];
            for (j, yj) in y.iter_mut().enumerate() {
                let mut acc = 0.0;
                for (k, zk) in z.iter().enumerate() {
                    acc += b[j * d + k] * sqrt_eig[k] * zk;
                }
                *yj = acc;
            }
            let x: Vec<f64> = mean.iter().zip(&y).map(|(m, yj)| m + sigma * yj).collect();
            let f = fitness(&x);
            candidates.push((f, x, y));
        }
        // puf-lint: allow(L4): fitness is a finite correlation by construction; NaN is a programming error
        candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("NaN fitness"));
        if candidates[0].0 > best_fitness {
            best_fitness = candidates[0].0;
            best_x = candidates[0].1.clone();
        }

        // Recombine mean and y-mean.
        let mut y_w = vec![0.0; d];
        let mut new_mean = vec![0.0; d];
        for (w, (_, x, y)) in weights.iter().zip(&candidates) {
            for j in 0..d {
                new_mean[j] += w * x[j];
                y_w[j] += w * y[j];
            }
        }
        mean = new_mean;

        // CSA path: ps ← (1−cs)·ps + √(cs(2−cs)μeff)·C^{-1/2}·y_w.
        let mut c_inv_y = vec![0.0; d];
        for (k, civ) in c_inv_y.iter_mut().enumerate() {
            // C^{-1/2} = B·diag(1/√eig)·Bᵀ.
            let mut acc = 0.0;
            for j in 0..d {
                let mut bty = 0.0;
                for (l, ywl) in y_w.iter().enumerate() {
                    bty += b[l * d + j] * ywl;
                }
                acc += b[k * d + j] / sqrt_eig[j] * bty;
            }
            *civ = acc;
        }
        let coef = (cs * (2.0 - cs) * mu_eff).sqrt();
        for j in 0..d {
            ps[j] = (1.0 - cs) * ps[j] + coef * c_inv_y[j];
        }
        let ps_norm = ps.iter().map(|v| v * v).sum::<f64>().sqrt();
        let hsig = ps_norm / (1.0 - (1.0 - cs).powi(2 * (gen as i32 + 1))).sqrt()
            < (1.4 + 2.0 / (d_f + 1.0)) * chi_n;
        let coef_c = (cc * (2.0 - cc) * mu_eff).sqrt();
        for j in 0..d {
            pc[j] = (1.0 - cc) * pc[j] + if hsig { coef_c * y_w[j] } else { 0.0 };
        }

        // Covariance update: rank-one + rank-μ.
        let delta_hsig = if hsig { 0.0 } else { cc * (2.0 - cc) };
        for j in 0..d {
            for k in 0..d {
                let mut rank_mu = 0.0;
                for (w, (_, _, y)) in weights.iter().zip(&candidates) {
                    rank_mu += w * y[j] * y[k];
                }
                cov[j * d + k] = (1.0 - c1 - cmu + c1 * delta_hsig) * cov[j * d + k]
                    + c1 * pc[j] * pc[k]
                    + cmu * rank_mu;
            }
        }

        // Step-size update.
        sigma *= ((cs / damps) * (ps_norm / chi_n - 1.0)).exp();
        if sigma < config.tol_sigma {
            break;
        }
    }

    CmaesResult {
        x: best_x,
        fitness: best_fitness,
        generations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn maximises_smooth_bowl() {
        let mut rng = StdRng::seed_from_u64(1);
        let target = [1.0, -2.0, 0.5, 3.0];
        let result = maximize(
            |x| {
                -x.iter()
                    .zip(&target)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
            },
            vec![0.0; 4],
            &CmaesConfig {
                max_generations: 400,
                ..CmaesConfig::default()
            },
            &mut rng,
        );
        for (got, want) in result.x.iter().zip(&target) {
            assert!((got - want).abs() < 1e-2, "{:?}", result.x);
        }
    }

    #[test]
    fn handles_non_differentiable_fitness() {
        // Fitness defined through a sign pattern — the reliability-attack
        // regime where gradients don't exist.
        let mut rng = StdRng::seed_from_u64(2);
        let target: [f64; 3] = [0.7, -0.3, 0.9];
        let result = maximize(
            |x| {
                // Count of coordinates on the right side plus a coarse
                // distance bucket — piecewise constant.
                let signs = x
                    .iter()
                    .zip(&target)
                    .filter(|(a, b)| a.signum() == (**b).signum())
                    .count() as f64;
                let dist: f64 = x.iter().zip(&target).map(|(a, b)| (a - b).abs()).sum();
                signs - (dist * 4.0).floor() * 0.1
            },
            vec![0.0; 3],
            &CmaesConfig::default(),
            &mut rng,
        );
        let signs_right = result
            .x
            .iter()
            .zip(&target)
            .filter(|(a, b)| a.signum() == (**b).signum())
            .count();
        assert_eq!(signs_right, 3, "{:?}", result.x);
    }

    #[test]
    fn jacobi_eigen_diagonalises() {
        // A = Q·diag(4,1)·Qᵀ for a rotation Q.
        let (c, s) = (0.6f64, 0.8f64);
        let a = vec![
            c * c * 4.0 + s * s * 1.0,
            c * s * (4.0 - 1.0),
            c * s * (4.0 - 1.0),
            s * s * 4.0 + c * c * 1.0,
        ];
        let (eig, b) = jacobi_eigen(a.clone(), 2);
        let mut eigs = eig.clone();
        eigs.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((eigs[0] - 1.0).abs() < 1e-9);
        assert!((eigs[1] - 4.0).abs() < 1e-9);
        // B·diag(eig)·Bᵀ reproduces A.
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0;
                for k in 0..2 {
                    acc += b[i * 2 + k] * eig[k] * b[j * 2 + k];
                }
                assert!((acc - a[i * 2 + j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn respects_generation_cap() {
        let mut rng = StdRng::seed_from_u64(3);
        let result = maximize(
            |x| -x[0] * x[0],
            vec![5.0],
            &CmaesConfig {
                max_generations: 7,
                ..CmaesConfig::default()
            },
            &mut rng,
        );
        assert!(result.generations <= 7);
    }
}
