//! Linear regression — the paper's enrollment estimator.
//!
//! §4: *"we use the linear regression algorithm, rather than logistic
//! regression … we obtained soft responses that are fractional numbers,
//! rather than binary numbers."* The model predicts a (possibly
//! out-of-`[0,1]`) *predicted soft response* `ŝ = θ · φ(c)`; the paper's
//! Fig. 8 notes the prediction range is wider than the measured `[0, 1]`
//! range, which is exactly what an unclipped linear model produces and what
//! the three-way thresholding exploits as a stability margin signal.

use crate::linalg::{cholesky_solve, dot, normal_equations, Matrix, NotPositiveDefiniteError};
use puf_core::Challenge;

/// A fitted ridge-regularised linear model over transformed challenges.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearRegression {
    theta: Vec<f64>,
}

impl LinearRegression {
    /// Fits `θ = argmin ‖X·θ − y‖² + λ‖θ‖²` by solving the normal equations
    /// with a Cholesky factorisation.
    ///
    /// `x` is the design matrix (rows = `φ(cᵢ)`), `y` the targets (measured
    /// soft responses during enrollment), `ridge` the regularisation λ ≥ 0.
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] when the Gram matrix is singular
    /// (fewer effective samples than features and `ridge == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != x.rows()` or `ridge < 0`.
    pub fn fit(x: &Matrix, y: &[f64], ridge: f64) -> Result<Self, NotPositiveDefiniteError> {
        assert_eq!(y.len(), x.rows(), "target length mismatch");
        // Fused single-pass kernel: Gram matrix and Xᵀy accumulate together
        // while streaming the design matrix once — no transpose, no second
        // pass (deterministically row-parallel on large enrollments).
        let (gram, xty) = normal_equations(x, y, ridge);
        let theta = cholesky_solve(&gram, &xty)?;
        Ok(Self { theta })
    }

    /// Convenience: fit from challenges and soft-response values.
    ///
    /// # Errors
    ///
    /// See [`LinearRegression::fit`].
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or lengths differ.
    pub fn fit_challenges(
        challenges: &[Challenge],
        soft_values: &[f64],
        ridge: f64,
    ) -> Result<Self, NotPositiveDefiniteError> {
        assert_eq!(
            challenges.len(),
            soft_values.len(),
            "challenge/target length mismatch"
        );
        let x = crate::features::design_matrix(challenges);
        Self::fit(&x, soft_values, ridge)
    }

    /// The fitted coefficient vector `θ` (length `stages + 1`).
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Builds a model directly from coefficients (e.g. restored from a
    /// server database).
    pub fn from_theta(theta: Vec<f64>) -> Self {
        Self { theta }
    }

    /// Predicted soft response `ŝ = θ · φ(c)` for one challenge.
    ///
    /// # Panics
    ///
    /// Panics if the challenge stage count does not match the model.
    pub fn predict(&self, challenge: &Challenge) -> f64 {
        let phi = challenge.features();
        assert_eq!(
            phi.len(),
            self.theta.len(),
            "challenge stage count does not match model"
        );
        phi.dot(&self.theta)
    }

    /// Predicted soft response from a pre-computed feature row.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch (debug builds).
    pub fn predict_features(&self, features: &[f64]) -> f64 {
        dot(features, &self.theta)
    }

    /// Predictions for a batch of challenges. One feature buffer is reused
    /// across the batch instead of allocating per challenge.
    pub fn predict_batch(&self, challenges: &[Challenge]) -> Vec<f64> {
        let mut phi = vec![0.0f64; self.theta.len()];
        challenges
            .iter()
            .map(|c| {
                assert_eq!(
                    c.stages() + 1,
                    self.theta.len(),
                    "challenge stage count does not match model"
                );
                c.features_into(&mut phi);
                dot(&phi, &self.theta)
            })
            .collect()
    }

    /// Mean squared error against targets.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or the batch is empty.
    pub fn mse(&self, challenges: &[Challenge], targets: &[f64]) -> f64 {
        assert_eq!(challenges.len(), targets.len(), "length mismatch");
        assert!(!challenges.is_empty(), "empty batch");
        let mut phi = vec![0.0f64; self.theta.len()];
        let mut acc = 0.0;
        for (c, &t) in challenges.iter().zip(targets) {
            assert_eq!(
                c.stages() + 1,
                self.theta.len(),
                "challenge stage count does not match model"
            );
            c.features_into(&mut phi);
            let e = dot(&phi, &self.theta) - t;
            acc += e * e;
        }
        acc / challenges.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_core::{ArbiterPuf, NoiseModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_map() {
        // Targets generated by a known θ; with enough samples and no noise,
        // the fit must recover θ exactly.
        let mut rng = StdRng::seed_from_u64(1);
        let theta_true: Vec<f64> = (0..17).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let challenges: Vec<Challenge> =
            (0..200).map(|_| Challenge::random(16, &mut rng)).collect();
        let y: Vec<f64> = challenges
            .iter()
            .map(|c| c.features().dot(&theta_true))
            .collect();
        let model = LinearRegression::fit_challenges(&challenges, &y, 0.0).unwrap();
        for (got, want) in model.theta().iter().zip(&theta_true) {
            assert!((got - want).abs() < 1e-9, "θ mismatch");
        }
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let mut rng = StdRng::seed_from_u64(2);
        let challenges: Vec<Challenge> = (0..100).map(|_| Challenge::random(8, &mut rng)).collect();
        let y: Vec<f64> = (0..100).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let free = LinearRegression::fit_challenges(&challenges, &y, 0.0).unwrap();
        let ridged = LinearRegression::fit_challenges(&challenges, &y, 100.0).unwrap();
        let norm_free: f64 = free.theta().iter().map(|t| t * t).sum();
        let norm_ridged: f64 = ridged.theta().iter().map(|t| t * t).sum();
        assert!(norm_ridged < norm_free);
    }

    #[test]
    fn underdetermined_without_ridge_fails_gracefully() {
        // 3 samples, 17 features: singular Gram matrix.
        let mut rng = StdRng::seed_from_u64(3);
        let challenges: Vec<Challenge> = (0..3).map(|_| Challenge::random(16, &mut rng)).collect();
        let y = vec![0.1, 0.5, 0.9];
        assert!(LinearRegression::fit_challenges(&challenges, &y, 0.0).is_err());
        // A tiny ridge regularises it.
        assert!(LinearRegression::fit_challenges(&challenges, &y, 1e-6).is_ok());
    }

    #[test]
    fn learns_puf_soft_responses_and_ranks_stability() {
        // Fit soft responses of a simulated PUF; predictions should
        // correlate strongly with the true delay difference.
        let mut rng = StdRng::seed_from_u64(4);
        let puf = ArbiterPuf::random(32, &mut rng);
        let noise = NoiseModel::paper_default();
        let challenges: Vec<Challenge> = (0..2_000)
            .map(|_| Challenge::random(32, &mut rng))
            .collect();
        let soft: Vec<f64> = challenges
            .iter()
            .map(|c| noise.soft_response(puf.delay_difference(c)))
            .collect();
        let model = LinearRegression::fit_challenges(&challenges, &soft, 1e-6).unwrap();

        let test: Vec<Challenge> = (0..500).map(|_| Challenge::random(32, &mut rng)).collect();
        let pred = model.predict_batch(&test);
        let delta: Vec<f64> = test.iter().map(|c| puf.delay_difference(c)).collect();
        let corr = puf_core::math::pearson(&pred, &delta);
        assert!(corr > 0.95, "prediction/delta correlation only {corr}");
    }

    #[test]
    fn mse_of_perfect_fit_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let challenges: Vec<Challenge> = (0..50).map(|_| Challenge::random(8, &mut rng)).collect();
        let theta: Vec<f64> = (0..9).map(|i| i as f64 * 0.1).collect();
        let y: Vec<f64> = challenges
            .iter()
            .map(|c| c.features().dot(&theta))
            .collect();
        let model = LinearRegression::fit_challenges(&challenges, &y, 0.0).unwrap();
        assert!(model.mse(&challenges, &y) < 1e-18);
    }

    #[test]
    fn from_theta_round_trip() {
        let model = LinearRegression::from_theta(vec![0.1, 0.2, 0.3]);
        let c = Challenge::zero(2);
        assert!((model.predict(&c) - 0.6).abs() < 1e-12);
        assert_eq!(model.theta(), &[0.1, 0.2, 0.3]);
    }
}
