//! Design-matrix construction from challenges.
//!
//! Every model in this workspace (linear regression, logistic regression,
//! MLP) consumes the transformed challenge `φ(c)` — "transformed challenge
//! vectors were applied as training inputs, which is a widely used method
//! for linear MUX arbiter PUF modeling" (paper §2.3).

use crate::linalg::Matrix;
use puf_core::Challenge;

/// Builds the `m × (stages + 1)` design matrix whose rows are `φ(cᵢ)`.
///
/// # Panics
///
/// Panics if `challenges` is empty or the stage counts are inconsistent.
pub fn design_matrix(challenges: &[Challenge]) -> Matrix {
    assert!(!challenges.is_empty(), "need at least one challenge");
    let stages = challenges[0].stages();
    let cols = stages + 1;
    let mut m = Matrix::zeros(challenges.len(), cols);
    for (i, c) in challenges.iter().enumerate() {
        assert_eq!(c.stages(), stages, "inconsistent challenge stage counts");
        c.features_into(m.row_mut(i));
    }
    m
}

/// Encodes hard responses as regression/classification targets
/// (`false → 0.0`, `true → 1.0`).
pub fn encode_bits(bits: &[bool]) -> Vec<f64> {
    bits.iter().map(|&b| f64::from(u8::from(b))).collect()
}

/// Encodes hard responses as `±1` targets (used by margin-style losses).
pub fn encode_pm_one(bits: &[bool]) -> Vec<f64> {
    bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn design_matrix_shape_and_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let challenges: Vec<Challenge> = (0..5).map(|_| Challenge::random(16, &mut rng)).collect();
        let x = design_matrix(&challenges);
        assert_eq!(x.rows(), 5);
        assert_eq!(x.cols(), 17);
        for (i, c) in challenges.iter().enumerate() {
            assert_eq!(x.row(i), c.features().as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn design_matrix_rejects_mixed_stage_counts() {
        let a = Challenge::zero(8);
        let b = Challenge::zero(16);
        design_matrix(&[a, b]);
    }

    #[test]
    fn encodings() {
        assert_eq!(encode_bits(&[true, false]), vec![1.0, 0.0]);
        assert_eq!(encode_pm_one(&[true, false]), vec![1.0, -1.0]);
    }
}
