//! Branch-free, auto-vectorizable elementwise math for the training hot
//! path.
//!
//! `f64::tanh` goes through libm's scalar, multi-branch implementation —
//! at ~20 ns per call it dominates the fused MLP forward pass (the paper's
//! 35-25-25 network evaluates 85 tanh per CRP per L-BFGS iteration, more
//! than its GEMM time once those are blocked). [`tanh_slice`] replaces it
//! with a branch-free `expm1`-style formulation whose scalar body LLVM
//! vectorizes 8-wide under the workspace-wide `-C target-cpu=native`
//! (AVX-512 on the bench hosts), at a few ULP of accuracy
//! (test-enforced ≤ 1e-14 relative against libm).
//!
//! Everything here is a pure function of the input bits — no tables, no
//! FMA contraction ambiguity, no thread or machine dependence beyond the
//! ISA's IEEE semantics — so the deterministic-training guarantee
//! (bit-identical models at any thread count) is unaffected.

// The Cody–Waite split constants and 1/n! Horner coefficients are written
// to full decimal length on purpose — truncating them to the nearest-f64
// shortest form would obscure which exact values the error analysis uses.
#![allow(clippy::excessive_precision)]

/// Natural-log base-2 conversion factor (`log2(e)`).
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High half of ln 2 for Cody–Waite range reduction.
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
/// Low half of ln 2 (ln 2 − [`LN2_HI`]).
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// |x| above which `tanh(x)` rounds to ±1 in f64 (`tanh(19.1) = 1 − 1e-17`).
const TANH_SATURATION: f64 = 20.0;

/// `exp(y) − 1` for `y ∈ [−2·TANH_SATURATION, 0]`, branch-free.
///
/// Classic reduction `y = k·ln2 + r`, `|r| ≤ ln2/2`, with a degree-13
/// Taylor–Horner core (truncation ≤ 4e-18 on the reduced range). The −1 is
/// folded in *before* the scale-by-2ᵏ: `exp(y) − 1 = pm1·2ᵏ + (2ᵏ − 1)`
/// where `pm1 = exp(r) − 1` comes straight from the polynomial without the
/// trailing `+1`, so there is no catastrophic cancellation near `y = 0`
/// (where `k = 0` and `2ᵏ − 1` is exactly zero). `k ∈ [−58, 0]` keeps the
/// scale factor normal, so no denormal or overflow paths exist.
#[inline(always)]
fn expm1_negative(y: f64) -> f64 {
    let kf = (y * LOG2E).round();
    let r = (y - kf * LN2_HI) - kf * LN2_LO;
    // Horner over 1/n! for n = 13 down to 1: p = (exp(r) − 1)/r.
    let mut p = 1.605_904_383_682_161_5e-10; // 1/13!
    p = p * r + 2.087_675_698_786_809_9e-9; // 1/12!
    p = p * r + 2.505_210_838_544_171_9e-8; // 1/11!
    p = p * r + 2.755_731_922_398_589_1e-7; // 1/10!
    p = p * r + 2.755_731_922_398_589_0e-6; // 1/9!
    p = p * r + 2.480_158_730_158_730_2e-5; // 1/8!
    p = p * r + 1.984_126_984_126_984_1e-4; // 1/7!
    p = p * r + 1.388_888_888_888_888_9e-3; // 1/6!
    p = p * r + 8.333_333_333_333_333_3e-3; // 1/5!
    p = p * r + 4.166_666_666_666_666_6e-2; // 1/4!
    p = p * r + 1.666_666_666_666_666_6e-1; // 1/3!
    p = p * r + 5.0e-1; // 1/2!
    p = p * r + 1.0;
    let pm1 = p * r;
    // 2^k via direct exponent assembly; k ≥ −58 keeps this normal.
    let scale = f64::from_bits(((kf as i64 + 1023) as u64) << 52);
    pm1 * scale + (scale - 1.0)
}

/// Branch-free `tanh` via `tanh(|x|) = −em1 / (2 + em1)` with
/// `em1 = exp(−2|x|) − 1`, restoring the sign at the end. The expm1 form
/// avoids the `1 − e^{−2x}` cancellation that would otherwise cost ~10
/// bits near zero.
///
/// Matches libm to a few ULP on finite inputs (test-enforced); saturated
/// inputs (`|x| ≥ 20`) return exactly ±1. Not IEEE-complete: NaN maps to
/// ±1 instead of propagating — acceptable for activations, which the
/// training loop keeps finite by construction.
#[inline(always)]
pub fn tanh(x: f64) -> f64 {
    let t = x.abs().min(TANH_SATURATION);
    let em1 = expm1_negative(-2.0 * t);
    (-em1 / (2.0 + em1)).copysign(x)
}

/// Applies [`tanh`] elementwise in place — the vectorized activation pass
/// of the fused MLP forward kernel.
pub fn tanh_slice(v: &mut [f64]) {
    for x in v {
        *x = tanh(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ULP distance between two finite f64 of the same sign.
    fn ulp_diff(a: f64, b: f64) -> u64 {
        let (ia, ib) = (a.to_bits() as i64, b.to_bits() as i64);
        ia.abs_diff(ib)
    }

    #[test]
    fn matches_libm_to_a_few_ulp() {
        // Dense sweep over the active range plus the saturation shoulder.
        let mut worst = 0u64;
        let mut x = -22.0;
        while x < 22.0 {
            let got = tanh(x);
            let want = x.tanh();
            let d = if want.abs() >= 1.0 - 1e-16 {
                // At saturation both are ±1 up to one ulp.
                assert!((got - want).abs() < 1e-15, "x={x}: {got} vs {want}");
                0
            } else {
                ulp_diff(got, want)
            };
            worst = worst.max(d);
            assert!(
                (got - want).abs() <= 1e-14 * (1.0 + want.abs()),
                "x={x}: {got} vs {want}"
            );
            x += 0.000_37;
        }
        assert!(worst <= 8, "worst-case ulp distance {worst}");
    }

    #[test]
    fn exact_special_values() {
        assert_eq!(tanh(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(tanh(1e3), 1.0);
        assert_eq!(tanh(-1e3), -1.0);
        assert_eq!(tanh(f64::INFINITY), 1.0);
        assert_eq!(tanh(f64::NEG_INFINITY), -1.0);
    }

    #[test]
    fn odd_symmetry_is_bitwise() {
        let mut x = 0.001;
        while x < 21.0 {
            assert_eq!(tanh(-x).to_bits(), (-tanh(x)).to_bits(), "x={x}");
            x *= 1.37;
        }
    }

    #[test]
    fn slice_matches_scalar() {
        let mut v: Vec<f64> = (-40..40).map(|i| i as f64 * 0.31).collect();
        let want: Vec<f64> = v.iter().map(|&x| tanh(x)).collect();
        tanh_slice(&mut v);
        assert_eq!(
            v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
