//! Multi-layer perceptron binary classifier — the paper's modeling-attack
//! estimator.
//!
//! §2.3: *"The training was performed using a multi-layer perceptron
//! classifier model. We built a 3-layer neural network comprising of 35
//! (first layer), 25 (second layer) and 25 (third layer) nodes … The
//! optimization algorithm is the Limited-memory BFGS."* This module
//! implements exactly that: tanh hidden layers, a sigmoid output unit,
//! mean binary cross-entropy with L2 weight decay, trained full-batch with
//! [`crate::opt::Lbfgs`].
//!
//! The training hot path is fused and blocked: forward and backward run
//! through the cache-blocked kernels in [`crate::gemm`] over preallocated
//! [`MlpWorkspace`] buffers (reused across every L-BFGS line-search
//! evaluation via a [`crate::parallel::Pool`]), and the per-row gradient
//! sum fans out over [`crate::parallel::reduce_rows`]'s fixed-order
//! chunked reduction — so trained models are **bit-identical at any
//! thread count**. The pre-blocking implementation survives as
//! [`Mlp::loss_value_grad_reference`], the oracle for the equivalence
//! proptests and the baseline of the before/after benchmarks.

use crate::gemm::{self, GemmScratch};
use crate::linalg::Matrix;
use crate::opt::{Lbfgs, Objective, OptimizeResult};
use crate::parallel;
use rand::Rng;
use std::fmt;

/// Hidden-layer architecture and training hyper-parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer widths. Default `[35, 25, 25]` (the paper's network).
    pub hidden: Vec<usize>,
    /// L2 weight-decay strength (scikit-learn's `alpha`). Default 1e-4.
    pub alpha: f64,
    /// L-BFGS iteration cap. Default 200 (scikit-learn's `max_iter`).
    pub max_iterations: usize,
    /// L-BFGS gradient tolerance. Default 1e-5.
    pub tolerance: f64,
    /// Worker threads for the row-parallel gradient; `0` (the default)
    /// auto-detects from `PUF_THREADS` / available cores. Trained models
    /// are bit-identical for every value — this knob trades wall-clock
    /// only, e.g. to pin inner training to one thread under an outer
    /// harness fan-out.
    pub workers: usize,
}

impl MlpConfig {
    /// The paper's 35-25-25 network with scikit-learn-like defaults.
    pub fn paper_default() -> Self {
        Self {
            hidden: vec![35, 25, 25],
            alpha: 1e-4,
            max_iterations: 200,
            tolerance: 1e-5,
            workers: 0,
        }
    }

    /// A small network for fast tests.
    pub fn tiny() -> Self {
        Self {
            hidden: vec![8],
            alpha: 1e-4,
            max_iterations: 200,
            tolerance: 1e-6,
            workers: 0,
        }
    }
}

impl Default for MlpConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A feed-forward network `input → hidden… → 1` with tanh hidden units and
/// a sigmoid output, packed into one flat parameter vector.
#[derive(Clone, PartialEq)]
pub struct Mlp {
    /// Layer widths, including input and the single output unit.
    sizes: Vec<usize>,
    /// Flat parameters: per layer, row-major `W (out × in)` then bias.
    params: Vec<f64>,
}

impl fmt::Debug for Mlp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mlp {{ sizes: {:?}, params: {} values }}",
            self.sizes,
            self.params.len()
        )
    }
}

/// Numerically stable logistic sigmoid.
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Stable binary cross-entropy from the *logit*:
/// `max(z,0) − z·y + ln(1 + e^{−|z|})`.
fn bce_from_logit(z: f64, y: f64) -> f64 {
    z.max(0.0) - z * y + (-z.abs()).exp().ln_1p()
}

fn param_count(sizes: &[usize]) -> usize {
    sizes.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
}

/// Preallocated buffers for one worker's fused forward/backward pass over
/// a row chunk. Created once per worker per training run (pooled by
/// [`MlpObjective`]) instead of once per gradient evaluation.
#[derive(Debug)]
pub struct MlpWorkspace {
    /// Row capacity the buffers are sized for.
    cap_rows: usize,
    /// Post-activation buffer per layer: `acts[l]` holds `rows × sizes[l+1]`
    /// values (tanh outputs for hidden layers, raw logits for the last).
    acts: Vec<Vec<f64>>,
    /// Ping-pong delta buffers, sized to the widest non-input layer.
    delta: Vec<f64>,
    delta_next: Vec<f64>,
    /// Transposed-weight scratch for the forward GEMM (largest layer).
    wt: Vec<f64>,
    /// Flat-parameter offset of each layer's weight block.
    offsets: Vec<usize>,
    /// Packing panel shared by all GEMM calls in this workspace.
    scratch: GemmScratch,
}

impl MlpWorkspace {
    fn new(sizes: &[usize], cap_rows: usize) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() - 1);
        let mut acc = 0;
        for w in sizes.windows(2) {
            offsets.push(acc);
            acc += w[0] * w[1] + w[1];
        }
        let max_width = sizes[1..].iter().copied().max().unwrap_or(1);
        let max_wmat = sizes.windows(2).map(|w| w[0] * w[1]).max().unwrap_or(0);
        Self {
            cap_rows,
            acts: sizes[1..]
                .iter()
                .map(|&w| vec![0.0; cap_rows * w])
                .collect(),
            delta: vec![0.0; cap_rows * max_width],
            delta_next: vec![0.0; cap_rows * max_width],
            wt: vec![0.0; max_wmat],
            offsets,
            scratch: GemmScratch::default(),
        }
    }

    /// Grows the row capacity if a pooled workspace is smaller than the
    /// chunk at hand (e.g. the full-batch pass after minibatch SGD).
    fn ensure_rows(&mut self, sizes: &[usize], rows: usize) {
        if rows <= self.cap_rows {
            return;
        }
        let max_width = sizes[1..].iter().copied().max().unwrap_or(1);
        for (buf, &w) in self.acts.iter_mut().zip(&sizes[1..]) {
            buf.resize(rows * w, 0.0);
        }
        self.delta.resize(rows * max_width, 0.0);
        self.delta_next.resize(rows * max_width, 0.0);
        self.cap_rows = rows;
    }
}

impl Mlp {
    /// Creates a network with small random initial weights (Glorot-style
    /// scaling `1/√n_in`).
    ///
    /// # Panics
    ///
    /// Panics if `input_dim` is zero or any hidden width is zero.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, config: &MlpConfig, rng: &mut R) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        assert!(
            config.hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        let mut sizes = Vec::with_capacity(config.hidden.len() + 2);
        sizes.push(input_dim);
        sizes.extend_from_slice(&config.hidden);
        sizes.push(1);
        let mut params = vec![0.0; param_count(&sizes)];
        let mut offset = 0;
        for w in sizes.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let scale = (1.0 / n_in as f64).sqrt();
            for p in &mut params[offset..offset + n_in * n_out] {
                *p = rng.gen_range(-scale..scale);
            }
            offset += n_in * n_out + n_out; // biases stay zero
        }
        Self { sizes, params }
    }

    /// Layer widths including input and output.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Total number of parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// The flat parameter vector.
    pub fn params(&self) -> &[f64] {
        &self.params
    }

    /// Replaces the parameter vector (e.g. with an optimizer result).
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn set_params(&mut self, params: Vec<f64>) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params = params;
    }

    /// Forward pass for a batch: returns the output *logits* (pre-sigmoid),
    /// one per input row.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the input width.
    pub fn forward_logits(&self, x: &Matrix) -> Vec<f64> {
        self.forward_logits_with(&self.params, x)
    }

    fn forward_logits_with(&self, params: &[f64], x: &Matrix) -> Vec<f64> {
        assert_eq!(x.cols(), self.sizes[0], "input width mismatch");
        // Bounded chunks keep the activation workspace cache-friendly on
        // large prediction batches; forward values are elementwise per row,
        // so chunking cannot change a single bit of any logit.
        const PREDICT_ROWS: usize = 8192;
        let m = x.rows();
        let d = self.sizes[0];
        let mut ws = MlpWorkspace::new(&self.sizes, m.min(PREDICT_ROWS));
        let mut logits = Vec::with_capacity(m);
        let mut r0 = 0;
        while r0 < m {
            let r1 = (r0 + PREDICT_ROWS).min(m);
            self.forward_chunk(params, &x.as_slice()[r0 * d..r1 * d], r1 - r0, &mut ws);
            logits.extend_from_slice(&ws.acts[self.sizes.len() - 2][..r1 - r0]);
            r0 = r1;
        }
        logits
    }

    /// Fused forward pass over one row chunk: fills `ws.acts` (tanh
    /// activations per hidden layer, raw logits for the output layer).
    fn forward_chunk(&self, params: &[f64], x_rows: &[f64], mr: usize, ws: &mut MlpWorkspace) {
        debug_assert_eq!(x_rows.len(), mr * self.sizes[0]);
        debug_assert!(mr <= ws.cap_rows);
        let last = self.sizes.len() - 2;
        for (l, w) in self.sizes.windows(2).enumerate() {
            let (n_in, n_out) = (w[0], w[1]);
            let offset = ws.offsets[l];
            let weights = &params[offset..offset + n_in * n_out];
            let biases = &params[offset + n_in * n_out..offset + n_in * n_out + n_out];
            // Transpose W (n_out × n_in) into wt (n_in × n_out): the layer
            // matrices are tiny, so this is cheap, and it turns the forward
            // product into a plain row-major GEMM with packed panels.
            let wt = &mut ws.wt[..n_in * n_out];
            for (j, wrow) in weights.chunks_exact(n_in).enumerate() {
                for (kk, &wv) in wrow.iter().enumerate() {
                    wt[kk * n_out + j] = wv;
                }
            }
            let (done, rest) = ws.acts.split_at_mut(l);
            let prev: &[f64] = if l == 0 {
                x_rows
            } else {
                &done[l - 1][..mr * n_in]
            };
            let z = &mut rest[0][..mr * n_out];
            gemm::gemm_into(mr, n_in, n_out, prev, wt, z, &mut ws.scratch);
            if l < last {
                for zrow in z.chunks_exact_mut(n_out) {
                    for (zv, &bv) in zrow.iter_mut().zip(biases) {
                        *zv += bv;
                    }
                }
                // Vectorized activation pass (matches libm tanh to a few
                // ULP; see `fastmath` — libm's scalar tanh would dominate
                // the whole fused step otherwise).
                crate::fastmath::tanh_slice(z);
            } else {
                for zrow in z.chunks_exact_mut(n_out) {
                    for (zv, &bv) in zrow.iter_mut().zip(biases) {
                        *zv += bv;
                    }
                }
            }
        }
    }

    /// Fused backward pass over one row chunk (after [`Mlp::forward_chunk`]
    /// on the same rows): accumulates the data-term gradient into `acc`
    /// (laid out like the parameter vector) and returns the chunk's summed
    /// cross-entropy. `m_f` is the full-batch row count, so per-chunk
    /// contributions are already scaled for the mean.
    #[allow(clippy::too_many_arguments)]
    fn backward_chunk(
        &self,
        params: &[f64],
        x_rows: &[f64],
        y: &[f64],
        mr: usize,
        m_f: f64,
        ws: &mut MlpWorkspace,
        acc: &mut [f64],
    ) -> f64 {
        let n_layers = self.sizes.len() - 1;
        let mut loss = 0.0;
        {
            let logits = &ws.acts[n_layers - 1][..mr];
            let delta = &mut ws.delta[..mr];
            for ((d, &z), &yi) in delta.iter_mut().zip(logits).zip(y) {
                loss += bce_from_logit(z, yi);
                *d = (sigmoid(z) - yi) / m_f;
            }
        }
        for l in (0..n_layers).rev() {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let offset = ws.offsets[l];
            let a_prev: &[f64] = if l == 0 {
                x_rows
            } else {
                &ws.acts[l - 1][..mr * n_in]
            };
            let delta_cur = &ws.delta[..mr * n_out];
            // Weight gradient gW = δᵀ·a_prev with the bias column sums
            // fused into the same streaming pass.
            let (gw, gb) = acc[offset..offset + n_in * n_out + n_out].split_at_mut(n_in * n_out);
            gemm::gemm_atb_into(mr, n_out, n_in, delta_cur, a_prev, gw, Some(gb));
            if l > 0 {
                // Propagate: δ_prev = (δ·W) ⊙ tanh'(a_prev).
                let weights = &params[offset..offset + n_in * n_out];
                let nd = &mut ws.delta_next[..mr * n_in];
                gemm::gemm_into(mr, n_out, n_in, delta_cur, weights, nd, &mut ws.scratch);
                for (ndrow, arow) in nd.chunks_exact_mut(n_in).zip(a_prev.chunks_exact(n_in)) {
                    for (d, &a) in ndrow.iter_mut().zip(arow) {
                        *d *= 1.0 - a * a;
                    }
                }
                std::mem::swap(&mut ws.delta, &mut ws.delta_next);
            }
        }
        loss
    }

    /// Predicted probability `P(response = 1)` for each input row.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f64> {
        self.forward_logits(x).into_iter().map(sigmoid).collect()
    }

    /// Hard predictions at threshold 0.5.
    pub fn predict(&self, x: &Matrix) -> Vec<bool> {
        self.forward_logits(x)
            .into_iter()
            .map(|z| z > 0.0)
            .collect()
    }

    /// The full-batch training objective over `(x, y)`, with a workspace
    /// pool reused across every evaluation — hand this to any
    /// [`crate::opt`] optimizer to train on the exact paper loss.
    /// `workers = 0` auto-detects the thread count; results are
    /// bit-identical for every value.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn objective<'a>(
        &'a self,
        x: &'a Matrix,
        y: &'a [f64],
        alpha: f64,
        workers: usize,
    ) -> MlpObjective<'a> {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        assert_eq!(x.cols(), self.sizes[0], "input width mismatch");
        let workers = if workers == 0 {
            parallel::worker_count(x.rows())
        } else {
            workers
        };
        MlpObjective {
            mlp: self,
            x,
            y,
            alpha,
            workers,
            pool: parallel::Pool::new(),
        }
    }

    /// Trains the network in place on `(x, y)` with L-BFGS and returns the
    /// optimizer diagnostics. `y` entries must be 0.0 or 1.0.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn train(&mut self, x: &Matrix, y: &[f64], config: &MlpConfig) -> OptimizeResult {
        let objective = self.objective(x, y, config.alpha, config.workers);
        let result = Lbfgs::new()
            .with_max_iterations(config.max_iterations)
            .with_tolerance(config.tolerance)
            .minimize(&objective, self.params.clone());
        self.params = result.x.clone();
        result
    }

    /// Trains the network with minibatch Adam — the stochastic alternative
    /// to the paper's full-batch L-BFGS, useful when the stable-CRP dataset
    /// outgrows memory-friendly full-batch passes. Returns the final
    /// full-batch loss.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or a zero batch size.
    pub fn train_sgd<R: Rng + ?Sized>(
        &mut self,
        x: &Matrix,
        y: &[f64],
        config: &SgdConfig,
        rng: &mut R,
    ) -> f64 {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        assert!(config.batch_size > 0, "batch size must be positive");
        let n = x.rows();
        let dim = self.params.len();
        let mut m = vec![0.0; dim];
        let mut v = vec![0.0; dim];
        let mut grad = vec![0.0; dim];
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 0i32;
        // Minibatches are too small to fan out; one pooled workspace is
        // reused across every batch of every epoch.
        let pool = parallel::Pool::new();
        let _span = puf_telemetry::span!("ml.train.sgd");
        let _trace = puf_telemetry::trace_span!("ml.train.sgd");
        for _ in 0..config.epochs {
            let _epoch = puf_telemetry::trace_span!("ml.train.sgd.epoch");
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for batch in order.chunks(config.batch_size) {
                let mut bx = Matrix::zeros(batch.len(), x.cols());
                let mut by = Vec::with_capacity(batch.len());
                for (row, &idx) in batch.iter().enumerate() {
                    bx.row_mut(row).copy_from_slice(x.row(idx));
                    by.push(y[idx]);
                }
                let params = std::mem::take(&mut self.params);
                self.loss_grad_pooled(&params, &bx, &by, config.alpha, &mut grad, 1, &pool);
                self.params = params;
                t += 1;
                for i in 0..dim {
                    m[i] = 0.9 * m[i] + 0.1 * grad[i];
                    v[i] = 0.999 * v[i] + 0.001 * grad[i] * grad[i];
                    let m_hat = m[i] / (1.0 - 0.9f64.powi(t));
                    let v_hat = v[i] / (1.0 - 0.999f64.powi(t));
                    self.params[i] -= config.learning_rate * m_hat / (v_hat.sqrt() + 1e-8);
                }
            }
            puf_telemetry::counter!("ml.train.sgd.epochs").inc();
            if puf_telemetry::enabled() {
                let params = std::mem::take(&mut self.params);
                let loss = self.loss_grad_pooled(&params, x, y, config.alpha, &mut grad, 1, &pool);
                self.params = params;
                puf_telemetry::trace!("ml.train.sgd.loss").push(loss);
            }
        }
        let params = std::mem::take(&mut self.params);
        let loss = self.loss_grad_pooled(&params, x, y, config.alpha, &mut grad, 1, &pool);
        self.params = params;
        loss
    }

    /// Regularised cross-entropy loss and its gradient at an arbitrary
    /// parameter vector (the network's own parameters are untouched).
    ///
    /// Exposed so external optimizers and ablation harnesses can drive the
    /// exact training objective; `grad` must have length
    /// [`Mlp::num_params`]. For repeated evaluations prefer
    /// [`Mlp::objective`], which reuses workspaces across calls.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn loss_value_grad(
        &self,
        params: &[f64],
        x: &Matrix,
        y: &[f64],
        alpha: f64,
        grad: &mut [f64],
    ) -> f64 {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        assert_eq!(grad.len(), self.params.len(), "gradient length mismatch");
        let pool = parallel::Pool::new();
        self.loss_grad_pooled(
            params,
            x,
            y,
            alpha,
            grad,
            parallel::worker_count(x.rows()),
            &pool,
        )
    }

    /// Loss and gradient through the fused chunked kernels — the core every
    /// public entry point routes through.
    #[allow(clippy::too_many_arguments)]
    fn loss_grad_pooled(
        &self,
        params: &[f64],
        x: &Matrix,
        y: &[f64],
        alpha: f64,
        grad: &mut [f64],
        workers: usize,
        pool: &parallel::Pool<MlpWorkspace>,
    ) -> f64 {
        let m = x.rows();
        let m_f = m as f64;
        let d = self.sizes[0];
        let cap_rows = m.div_ceil(parallel::chunk_count(m));
        let sizes = &self.sizes;
        let data_loss = parallel::reduce_rows(
            m,
            workers,
            grad,
            pool,
            || MlpWorkspace::new(sizes, cap_rows),
            |ws, range, acc| {
                let mr = range.len();
                ws.ensure_rows(sizes, mr);
                let x_rows = &x.as_slice()[range.start * d..range.end * d];
                self.forward_chunk(params, x_rows, mr, ws);
                self.backward_chunk(params, x_rows, &y[range], mr, m_f, ws, acc)
            },
        );
        // L2 penalty on weights only, applied once after the reduction.
        let mut l2 = 0.0;
        let mut offset = 0;
        for w in self.sizes.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            let weights = &params[offset..offset + n_in * n_out];
            let gw = &mut grad[offset..offset + n_in * n_out];
            for (g, &p) in gw.iter_mut().zip(weights) {
                l2 += p * p;
                *g += alpha * p / m_f;
            }
            offset += n_in * n_out + n_out;
        }
        data_loss / m_f + 0.5 * alpha * l2 / m_f
    }

    /// The pre-blocking naive loss/gradient — row-by-row loops with
    /// per-call activation allocation, kept verbatim as the correctness
    /// oracle for the fused kernels and the baseline for the before/after
    /// training-step benchmarks.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn loss_value_grad_reference(
        &self,
        params: &[f64],
        x: &Matrix,
        y: &[f64],
        alpha: f64,
        grad: &mut [f64],
    ) -> f64 {
        assert_eq!(x.rows(), y.len(), "sample/target count mismatch");
        assert_eq!(grad.len(), self.params.len(), "gradient length mismatch");
        let m = x.rows();
        let m_f = m as f64;
        let activations = self.forward_all_reference(params, x);
        // puf-lint: allow(L4): forward_all_reference always returns >= 1 activation
        let logits = activations.last().expect("output layer");

        // Loss.
        let mut loss = 0.0;
        for i in 0..m {
            loss += bce_from_logit(logits[(i, 0)], y[i]);
        }
        loss /= m_f;

        // L2 penalty on weights only.
        let mut offset = 0;
        let mut l2 = 0.0;
        for w in self.sizes.windows(2) {
            let (n_in, n_out) = (w[0], w[1]);
            for &p in &params[offset..offset + n_in * n_out] {
                l2 += p * p;
            }
            offset += n_in * n_out + n_out;
        }
        loss += 0.5 * alpha * l2 / m_f;

        // Backward pass.
        grad.fill(0.0);
        // delta at the output: (σ(z) − y)/m, shape (m × 1).
        let mut delta = Matrix::zeros(m, 1);
        for i in 0..m {
            delta[(i, 0)] = (sigmoid(logits[(i, 0)]) - y[i]) / m_f;
        }

        // Walk layers backwards; `offsets[l]` is the parameter offset of
        // layer l.
        let n_layers = self.sizes.len() - 1;
        let mut offsets = Vec::with_capacity(n_layers);
        let mut acc = 0;
        for w in self.sizes.windows(2) {
            offsets.push(acc);
            acc += w[0] * w[1] + w[1];
        }

        for l in (0..n_layers).rev() {
            let (n_in, n_out) = (self.sizes[l], self.sizes[l + 1]);
            let offset = offsets[l];
            let a_prev = &activations[l];
            // grad W[j][k] = Σ_i delta[i][j] · a_prev[i][k] + α·W/m
            {
                let (gw, gb) =
                    grad[offset..offset + n_in * n_out + n_out].split_at_mut(n_in * n_out);
                for i in 0..m {
                    let drow = delta.row(i);
                    let arow = a_prev.row(i);
                    for (j, &dj) in drow.iter().enumerate() {
                        if dj == 0.0 {
                            continue;
                        }
                        gb[j] += dj;
                        let wrow = &mut gw[j * n_in..(j + 1) * n_in];
                        for (gk, &ak) in wrow.iter_mut().zip(arow) {
                            *gk += dj * ak;
                        }
                    }
                }
                let weights = &params[offset..offset + n_in * n_out];
                for (g, &p) in gw.iter_mut().zip(weights) {
                    *g += alpha * p / m_f;
                }
            }
            // Propagate delta to the previous layer (skip at the input).
            if l > 0 {
                let weights = &params[offset..offset + n_in * n_out];
                let mut new_delta = Matrix::zeros(m, n_in);
                for i in 0..m {
                    let drow = delta.row(i);
                    let ndrow = new_delta.row_mut(i);
                    for (j, &dj) in drow.iter().enumerate() {
                        if dj == 0.0 {
                            continue;
                        }
                        let wrow = &weights[j * n_in..(j + 1) * n_in];
                        for (nd, &wjk) in ndrow.iter_mut().zip(wrow) {
                            *nd += dj * wjk;
                        }
                    }
                    // tanh'(z) = 1 − a², where a is the stored activation.
                    let arow = a_prev.row(i);
                    for (nd, &a) in ndrow.iter_mut().zip(arow) {
                        *nd *= 1.0 - a * a;
                    }
                }
                delta = new_delta;
            }
        }
        loss
    }

    /// Naive full forward pass, returning per-layer activations
    /// (`activations[0]` is a copy of the input; the final entry holds raw
    /// logits). Reference-path companion of
    /// [`Mlp::loss_value_grad_reference`].
    fn forward_all_reference(&self, params: &[f64], x: &Matrix) -> Vec<Matrix> {
        let m = x.rows();
        let mut activations: Vec<Matrix> = Vec::with_capacity(self.sizes.len());
        activations.push(x.clone());
        let mut offset = 0;
        let last_layer = self.sizes.len() - 2;
        for (l, w) in self.sizes.windows(2).enumerate() {
            let (n_in, n_out) = (w[0], w[1]);
            let weights = &params[offset..offset + n_in * n_out];
            let biases = &params[offset + n_in * n_out..offset + n_in * n_out + n_out];
            offset += n_in * n_out + n_out;
            // puf-lint: allow(L4): the vector is seeded with the input activation before the loop
            let prev = activations.last().expect("at least the input");
            let mut z = Matrix::zeros(m, n_out);
            for i in 0..m {
                let arow = prev.row(i);
                let zrow = z.row_mut(i);
                zrow.copy_from_slice(biases);
                for (k, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    // W is row-major (n_out × n_in): W[j][k] at j*n_in + k.
                    for (j, zj) in zrow.iter_mut().enumerate() {
                        *zj += a * weights[j * n_in + k];
                    }
                }
            }
            if l < last_layer {
                for v in z.as_mut_slice() {
                    *v = v.tanh();
                }
            }
            activations.push(z);
        }
        activations
    }
}

/// Hyper-parameters of [`Mlp::train_sgd`].
#[derive(Clone, Debug, PartialEq)]
pub struct SgdConfig {
    /// Minibatch size. Default 64.
    pub batch_size: usize,
    /// Number of passes over the data. Default 30.
    pub epochs: usize,
    /// Adam step size. Default 1e-3.
    pub learning_rate: f64,
    /// L2 weight decay. Default 1e-4.
    pub alpha: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            batch_size: 64,
            epochs: 30,
            learning_rate: 1e-3,
            alpha: 1e-4,
        }
    }
}

/// Full-batch cross-entropy objective of an [`Mlp`] on a dataset, with a
/// workspace pool shared across evaluations — build one with
/// [`Mlp::objective`].
#[derive(Debug)]
pub struct MlpObjective<'a> {
    mlp: &'a Mlp,
    x: &'a Matrix,
    y: &'a [f64],
    alpha: f64,
    workers: usize,
    pool: parallel::Pool<MlpWorkspace>,
}

impl Objective for MlpObjective<'_> {
    fn dim(&self) -> usize {
        self.mlp.num_params()
    }

    fn value_grad(&self, params: &[f64], grad: &mut [f64]) -> f64 {
        self.mlp.loss_grad_pooled(
            params,
            self.x,
            self.y,
            self.alpha,
            grad,
            self.workers,
            &self.pool,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_dataset() -> (Matrix, Vec<f64>) {
        // The classic non-linearly-separable XOR problem.
        let x = Matrix::from_rows(&[
            vec![-1.0, -1.0],
            vec![-1.0, 1.0],
            vec![1.0, -1.0],
            vec![1.0, 1.0],
        ]);
        let y = vec![0.0, 1.0, 1.0, 0.0];
        (x, y)
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(800.0) <= 1.0 && sigmoid(800.0) > 0.999);
        assert!(sigmoid(-800.0) >= 0.0 && sigmoid(-800.0) < 1e-10);
    }

    #[test]
    fn bce_matches_naive_formula_in_safe_range() {
        for &(z, y) in &[(0.3, 1.0), (-1.2, 0.0), (2.0, 0.0), (-0.5, 1.0)] {
            let p = sigmoid(z);
            let naive = -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
            assert!((bce_from_logit(z, y) - naive).abs() < 1e-10, "z={z} y={y}");
        }
    }

    #[test]
    fn param_count_matches_layout() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(33, &MlpConfig::paper_default(), &mut rng);
        // 33·35+35 + 35·25+25 + 25·25+25 + 25·1+1
        assert_eq!(
            mlp.num_params(),
            33 * 35 + 35 + 35 * 25 + 25 + 25 * 25 + 25 + 25 + 1
        );
        assert_eq!(mlp.sizes(), &[33, 35, 25, 25, 1]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = MlpConfig {
            hidden: vec![4, 3],
            alpha: 0.01,
            ..MlpConfig::tiny()
        };
        let mlp = Mlp::new(3, &config, &mut rng);
        let x = Matrix::from_rows(&[
            vec![0.5, -1.0, 2.0],
            vec![-0.3, 0.8, -0.1],
            vec![1.5, 0.2, 0.9],
        ]);
        let y = vec![1.0, 0.0, 1.0];
        let params = mlp.params().to_vec();
        let mut grad = vec![0.0; params.len()];
        let loss = mlp.loss_value_grad(&params, &x, &y, config.alpha, &mut grad);
        assert!(loss.is_finite());

        let eps = 1e-6;
        let mut scratch = vec![0.0; params.len()];
        for idx in (0..params.len()).step_by(7) {
            let mut p_plus = params.clone();
            p_plus[idx] += eps;
            let mut p_minus = params.clone();
            p_minus[idx] -= eps;
            let f_plus = mlp.loss_value_grad(&p_plus, &x, &y, config.alpha, &mut scratch);
            let f_minus = mlp.loss_value_grad(&p_minus, &x, &y, config.alpha, &mut scratch);
            let fd = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (grad[idx] - fd).abs() < 1e-5 * (1.0 + fd.abs()),
                "param {idx}: analytic {} vs fd {fd}",
                grad[idx]
            );
        }
    }

    #[test]
    fn fused_path_matches_reference_loss_grad() {
        let mut rng = StdRng::seed_from_u64(11);
        let config = MlpConfig {
            hidden: vec![6, 5],
            alpha: 0.02,
            ..MlpConfig::tiny()
        };
        let mlp = Mlp::new(4, &config, &mut rng);
        use rand::Rng;
        let mut x = Matrix::zeros(37, 4);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-2.0..2.0);
        }
        let y: Vec<f64> = (0..37).map(|i| f64::from(i % 2 == 0)).collect();
        let params = mlp.params().to_vec();
        let mut grad_fused = vec![0.0; params.len()];
        let mut grad_ref = vec![0.0; params.len()];
        let fused = mlp.loss_value_grad(&params, &x, &y, config.alpha, &mut grad_fused);
        let reference = mlp.loss_value_grad_reference(&params, &x, &y, config.alpha, &mut grad_ref);
        assert!((fused - reference).abs() < 1e-12 * (1.0 + reference.abs()));
        for (i, (g, r)) in grad_fused.iter().zip(&grad_ref).enumerate() {
            assert!(
                (g - r).abs() < 1e-12 * (1.0 + r.abs()),
                "grad[{i}]: {g} vs {r}"
            );
        }
    }

    #[test]
    fn learns_xor_problem() {
        let (x, y) = xor_dataset();
        let config = MlpConfig {
            hidden: vec![8],
            alpha: 1e-5,
            max_iterations: 500,
            tolerance: 1e-8,
            ..MlpConfig::tiny()
        };
        // XOR has bad local minima for tiny nets; try a few seeds.
        let mut solved = false;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut mlp = Mlp::new(2, &config, &mut rng);
            mlp.train(&x, &y, &config);
            let pred = mlp.predict(&x);
            let want = [false, true, true, false];
            if pred == want {
                solved = true;
                break;
            }
        }
        assert!(solved, "MLP failed to learn XOR with any of 5 seeds");
    }

    #[test]
    fn predict_proba_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mlp = Mlp::new(4, &MlpConfig::tiny(), &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, -1.0, 1.0, -1.0], vec![0.0, 0.0, 0.0, 0.0]]);
        for p in mlp.predict_proba(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = MlpConfig::tiny();
        let mut mlp = Mlp::new(2, &config, &mut rng);
        let (x, y) = xor_dataset();
        let mut grad = vec![0.0; mlp.num_params()];
        let before = mlp.loss_value_grad(mlp.params(), &x, &y, config.alpha, &mut grad);
        let result = mlp.train(&x, &y, &config);
        assert!(
            result.value < before,
            "training did not reduce loss: {} → {}",
            before,
            result.value
        );
    }

    #[test]
    fn sgd_learns_xor_problem() {
        let (x, y) = xor_dataset();
        let sgd = SgdConfig {
            batch_size: 4,
            epochs: 4_000,
            learning_rate: 5e-3,
            alpha: 1e-6,
        };
        let mut solved = false;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = MlpConfig {
                hidden: vec![8],
                ..MlpConfig::tiny()
            };
            let mut mlp = Mlp::new(2, &config, &mut rng);
            mlp.train_sgd(&x, &y, &sgd, &mut rng);
            if mlp.predict(&x) == [false, true, true, false] {
                solved = true;
                break;
            }
        }
        assert!(solved, "minibatch Adam failed to learn XOR with 5 seeds");
    }

    #[test]
    fn sgd_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(6);
        let config = MlpConfig::tiny();
        let mut mlp = Mlp::new(2, &config, &mut rng);
        let (x, y) = xor_dataset();
        let mut grad = vec![0.0; mlp.num_params()];
        let before = mlp.loss_value_grad(mlp.params(), &x, &y, 1e-4, &mut grad);
        let after = mlp.train_sgd(&x, &y, &SgdConfig::default(), &mut rng);
        assert!(
            after < before,
            "SGD did not reduce loss: {before} → {after}"
        );
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn train_rejects_shape_mismatch() {
        let mut rng = StdRng::seed_from_u64(5);
        let config = MlpConfig::tiny();
        let mut mlp = Mlp::new(2, &config, &mut rng);
        let (x, _) = xor_dataset();
        mlp.train(&x, &[1.0], &config);
    }
}
