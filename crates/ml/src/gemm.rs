//! Cache-blocked, register-tiled dense kernels for the training hot path.
//!
//! The paper's central experiment (Fig. 4) retrains a 35-25-25 MLP across
//! XOR widths n = 1..10 on up to 10⁶ CRPs; every L-BFGS line-search
//! evaluation is a handful of tall-skinny GEMMs (`m × 66 · 66 × 35`, …).
//! These kernels replace the naive triple loops in [`crate::linalg`] and
//! [`crate::mlp`] with the classic blocked scheme:
//!
//! * the B operand is packed into a zero-padded `KC × NR` column panel so
//!   the inner loop reads one contiguous `[f64; NR]` stripe per k step,
//! * A is consumed `MR` rows at a time straight from its row-major storage
//!   (rows are contiguous in k, so no A-packing is needed),
//! * the `MR × NR` accumulator tile lives in fixed-size local arrays that
//!   LLVM keeps in SIMD registers (`-C target-cpu=native` is set
//!   workspace-wide, so AVX+FMA codegen applies on the bench hosts).
//!
//! Everything here is safe Rust and deterministic: for a fixed shape the
//! floating-point summation order is a pure function of the inputs, never
//! of thread count or timing. Accuracy-sensitive callers verify against the
//! naive reference kernels (`crates/ml/tests/kernels.rs` proptests).

/// Rows of A per register tile.
const MR: usize = 4;
/// Columns of B per register tile (one packed panel stripe).
const NR: usize = 8;
/// k-extent of one packed panel: `KC · NR` doubles stay L1-resident.
const KC: usize = 256;

/// Reusable packing buffer for [`gemm_into`]. Hot callers (the MLP
/// workspace, [`crate::linalg::Matrix::matmul_into_with`]) hold one across
/// calls so the panel allocation happens once, not per multiply.
#[derive(Debug, Clone, Default)]
pub struct GemmScratch {
    /// The packed `KC × NR` B panel, stored as one `[f64; NR]` row per k.
    panel: Vec<[f64; NR]>,
}

/// The `MR × NR` register micro-kernel: four A rows against one packed
/// panel. Each accumulator row is a separate named `[f64; NR]` updated by
/// its own flat lane loop, and the panel stripe is copied *by value* —
/// this is the shape LLVM's loop vectorizer reliably turns into
/// broadcast-and-packed mul/add over full-width SIMD registers (a 2-D
/// `acc[r][c]` indexed form scalarizes instead, ~7× slower on the bench
/// hosts).
#[inline(always)]
fn micro_kernel_4(
    panel: &[[f64; NR]],
    ar0: &[f64],
    ar1: &[f64],
    ar2: &[f64],
    ar3: &[f64],
) -> [[f64; NR]; MR] {
    let mut c0 = [0.0f64; NR];
    let mut c1 = [0.0f64; NR];
    let mut c2 = [0.0f64; NR];
    let mut c3 = [0.0f64; NR];
    for (kk, &bv) in panel.iter().enumerate() {
        let a0 = ar0[kk];
        let a1 = ar1[kk];
        let a2 = ar2[kk];
        let a3 = ar3[kk];
        for c in 0..NR {
            c0[c] += a0 * bv[c];
        }
        for c in 0..NR {
            c1[c] += a1 * bv[c];
        }
        for c in 0..NR {
            c2[c] += a2 * bv[c];
        }
        for c in 0..NR {
            c3[c] += a3 * bv[c];
        }
    }
    [c0, c1, c2, c3]
}

/// `out(m×n) = a(m×k) · b(k×n)`, all row-major, `out` fully overwritten.
///
/// Blocked and register-tiled as described in the module docs. The
/// reduction order over `k` is blocked (`KC` at a time) and therefore
/// differs from the naive loop at the last-ulp level; it is identical
/// across calls, threads and machines for a given shape.
///
/// # Panics
///
/// Panics (via slice indexing) if a buffer is shorter than its
/// `rows × cols` shape implies.
pub fn gemm_into(
    m: usize,
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    scratch: &mut GemmScratch,
) {
    debug_assert_eq!(a.len(), m * k, "A shape mismatch");
    debug_assert_eq!(b.len(), k * n, "B shape mismatch");
    debug_assert_eq!(out.len(), m * n, "C shape mismatch");
    puf_telemetry::counter!("ml.gemm.calls").inc();
    puf_telemetry::counter!("ml.gemm.flops").add((2 * m * k * n) as u64);
    let _trace = puf_telemetry::trace_span!("ml.gemm.kernel");
    out[..m * n].fill(0.0);
    scratch.panel.resize(KC, [0.0; NR]);
    let panel = &mut scratch.panel[..KC];

    let mut j0 = 0;
    while j0 < n {
        let jw = NR.min(n - j0);
        let mut k0 = 0;
        while k0 < k {
            let kw = KC.min(k - k0);
            // Pack the kw × jw panel of B, zero-padded to NR columns so the
            // micro-kernel never branches on the column remainder.
            for (kk, row) in panel[..kw].iter_mut().enumerate() {
                let src = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + jw];
                row[..jw].copy_from_slice(src);
                row[jw..].fill(0.0);
            }
            // MR-row register tiles over the full panel.
            let mut i0 = 0;
            while i0 + MR <= m {
                let ar0 = &a[i0 * k + k0..i0 * k + k0 + kw];
                let ar1 = &a[(i0 + 1) * k + k0..(i0 + 1) * k + k0 + kw];
                let ar2 = &a[(i0 + 2) * k + k0..(i0 + 2) * k + k0 + kw];
                let ar3 = &a[(i0 + 3) * k + k0..(i0 + 3) * k + k0 + kw];
                let acc = micro_kernel_4(&panel[..kw], ar0, ar1, ar2, ar3);
                for (r, tile) in acc.iter().enumerate() {
                    let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                    for (o, v) in orow.iter_mut().zip(tile) {
                        *o += v;
                    }
                }
                i0 += MR;
            }
            // Remainder rows, one at a time against the same packed panel.
            while i0 < m {
                let mut acc = [0.0f64; NR];
                let ar = &a[i0 * k + k0..i0 * k + k0 + kw];
                for (kk, &av) in ar.iter().enumerate() {
                    let bv = panel[kk];
                    for c in 0..NR {
                        acc[c] += av * bv[c];
                    }
                }
                let orow = &mut out[i0 * n + j0..i0 * n + j0 + jw];
                for (o, v) in orow.iter_mut().zip(&acc) {
                    *o += v;
                }
                i0 += 1;
            }
            k0 += kw;
        }
        j0 += jw;
    }
}

/// `out(p×q) = aᵀ·b` for `a(m×p)`, `b(m×q)`, streamed over rows without
/// materialising the transpose; `out` is fully overwritten.
///
/// When `bias` is provided (length `p`), the column sums of `a` are fused
/// into the same pass — exactly the bias-gradient term of a dense layer,
/// where `a` holds the layer's deltas. `bias` is accumulated into, not
/// overwritten, so chunked callers can reduce into a zeroed buffer.
///
/// # Panics
///
/// Panics (via slice indexing) on shape mismatches.
pub fn gemm_atb_into(
    m: usize,
    p: usize,
    q: usize,
    a: &[f64],
    b: &[f64],
    out: &mut [f64],
    mut bias: Option<&mut [f64]>,
) {
    debug_assert_eq!(a.len(), m * p, "A shape mismatch");
    debug_assert_eq!(b.len(), m * q, "B shape mismatch");
    debug_assert_eq!(out.len(), p * q, "C shape mismatch");
    puf_telemetry::counter!("ml.gemm.calls").inc();
    puf_telemetry::counter!("ml.gemm.flops").add((2 * m * p * q) as u64);
    let _trace = puf_telemetry::trace_span!("ml.gemm.atb");
    out[..p * q].fill(0.0);
    // Four rows per pass: each `out` row is loaded and stored once per
    // four rank-1 updates instead of once per row, which quarters the
    // dominant read-modify-write traffic on the small `p × q` accumulator.
    let m4 = m - m % 4;
    let mut i = 0;
    while i < m4 {
        let a0 = &a[i * p..i * p + p];
        let a1 = &a[(i + 1) * p..(i + 1) * p + p];
        let a2 = &a[(i + 2) * p..(i + 2) * p + p];
        let a3 = &a[(i + 3) * p..(i + 3) * p + p];
        let b0 = &b[i * q..i * q + q];
        let b1 = &b[(i + 1) * q..(i + 1) * q + q];
        let b2 = &b[(i + 2) * q..(i + 2) * q + q];
        let b3 = &b[(i + 3) * q..(i + 3) * q + q];
        for j in 0..p {
            let (v0, v1, v2, v3) = (a0[j], a1[j], a2[j], a3[j]);
            let orow = &mut out[j * q..j * q + q];
            for (c, o) in orow.iter_mut().enumerate() {
                *o += v0 * b0[c] + v1 * b1[c] + v2 * b2[c] + v3 * b3[c];
            }
        }
        if let Some(bs) = bias.as_deref_mut() {
            for (j, s) in bs.iter_mut().enumerate() {
                *s += a0[j] + a1[j] + a2[j] + a3[j];
            }
        }
        i += 4;
    }
    while i < m {
        let arow = &a[i * p..i * p + p];
        let brow = &b[i * q..i * q + q];
        for (j, &aj) in arow.iter().enumerate() {
            let orow = &mut out[j * q..j * q + q];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aj * bv;
            }
        }
        if let Some(bs) = bias.as_deref_mut() {
            for (s, &aj) in bs.iter_mut().zip(arow) {
                *s += aj;
            }
        }
        i += 1;
    }
}

/// Accumulates the upper triangle of `xᵀx` and the full `xᵀy` for a block
/// of rows into `acc`, laid out as `[n·n gram | n xtv]` (`acc` is added to,
/// not overwritten).
///
/// One streaming pass over the rows serves both normal-equation products —
/// the fused enrollment kernel behind
/// [`crate::linalg::normal_equations`]. Only entries `gram[a][b]` with
/// `b ≥ a` are written; the caller mirrors the triangle after reduction.
///
/// # Panics
///
/// Panics (via slice indexing) on shape mismatches.
pub fn syrk_xtv_accumulate(n: usize, x_rows: &[f64], y: &[f64], acc: &mut [f64]) {
    let rows = y.len();
    debug_assert_eq!(x_rows.len(), rows * n, "X shape mismatch");
    debug_assert_eq!(acc.len(), n * n + n, "accumulator length mismatch");
    let (gram, xtv) = acc.split_at_mut(n * n);
    for i in 0..rows {
        let row = &x_rows[i * n..i * n + n];
        let yi = y[i];
        for (a, &xa) in row.iter().enumerate() {
            let grow = &mut gram[a * n + a..a * n + n];
            for (g, &xb) in grow.iter_mut().zip(&row[a..]) {
                *g += xa * xb;
            }
            xtv[a] += xa * yi;
        }
    }
}

/// Naive triple-loop reference `a(m×k) · b(k×n)` — the pre-blocking
/// implementation, kept as the oracle for the proptests and the
/// before/after benchmarks.
pub fn gemm_reference(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    out[..m * n].fill(0.0);
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk];
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..kk * n + n];
            let orow = &mut out[i * n..i * n + n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(len: usize, scale: f64) -> Vec<f64> {
        (0..len).map(|i| ((i % 17) as f64 - 8.0) * scale).collect()
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let tol = 1e-12 * (1.0 + w.abs());
            assert!((g - w).abs() <= tol, "elem {i}: {g} vs {w}");
        }
    }

    #[test]
    fn blocked_matches_reference_across_shapes() {
        let mut scratch = GemmScratch::default();
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 3),
            (13, 66, 35),
            (9, 300, 9),
            (100, 2, 17),
            (3, 259, 11),
        ] {
            let a = seq(m * k, 0.25);
            let b = seq(k * n, 0.5);
            let mut got = vec![f64::NAN; m * n];
            let mut want = vec![f64::NAN; m * n];
            gemm_into(m, k, n, &a, &b, &mut got, &mut scratch);
            gemm_reference(m, k, n, &a, &b, &mut want);
            assert_close(&got, &want);
        }
    }

    #[test]
    fn atb_matches_transposed_reference_and_fuses_bias() {
        let (m, p, q) = (23, 5, 7);
        let a = seq(m * p, 0.3);
        let b = seq(m * q, 0.7);
        let mut got = vec![0.0; p * q];
        let mut bias = vec![0.0; p];
        gemm_atb_into(m, p, q, &a, &b, &mut got, Some(&mut bias));
        // Reference: transpose A explicitly, multiply naively.
        let mut at = vec![0.0; p * m];
        for i in 0..m {
            for j in 0..p {
                at[j * m + i] = a[i * p + j];
            }
        }
        let mut want = vec![0.0; p * q];
        gemm_reference(p, m, q, &at, &b, &mut want);
        assert_close(&got, &want);
        for j in 0..p {
            let want_bias: f64 = (0..m).map(|i| a[i * p + j]).sum();
            assert!((bias[j] - want_bias).abs() < 1e-12);
        }
    }

    #[test]
    fn syrk_xtv_matches_explicit_products() {
        let (m, n) = (31, 6);
        let x = seq(m * n, 0.2);
        let y = seq(m, 0.9);
        let mut acc = vec![0.0; n * n + n];
        syrk_xtv_accumulate(n, &x, &y, &mut acc);
        for a in 0..n {
            for b in a..n {
                let want: f64 = (0..m).map(|i| x[i * n + a] * x[i * n + b]).sum();
                assert!((acc[a * n + b] - want).abs() < 1e-10, "gram[{a}][{b}]");
            }
            let want: f64 = (0..m).map(|i| x[i * n + a] * y[i]).sum();
            assert!((acc[n * n + a] - want).abs() < 1e-10, "xtv[{a}]");
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let mut scratch = GemmScratch::default();
        let a = seq(6 * 9, 0.4);
        let b = seq(9 * 5, 0.6);
        let mut first = vec![0.0; 6 * 5];
        gemm_into(6, 9, 5, &a, &b, &mut first, &mut scratch);
        // A big intermediate multiply dirties the panel…
        let big_a = seq(8 * 300, 0.1);
        let big_b = seq(300 * 12, 0.2);
        let mut big = vec![0.0; 8 * 12];
        gemm_into(8, 300, 12, &big_a, &big_b, &mut big, &mut scratch);
        // …and the original product still comes out bit-identical.
        let mut again = vec![0.0; 6 * 5];
        gemm_into(6, 9, 5, &a, &b, &mut again, &mut scratch);
        assert_eq!(first, again);
    }
}
