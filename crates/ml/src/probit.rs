//! Probit-inverted delay-parameter estimation — the alternative enrollment
//! estimator the paper's choice of plain linear regression should be
//! compared against.
//!
//! Under the noise model the soft response is `s = Φ(Δ/σ)`, so
//! `Φ⁻¹(s) = Δ/σ` is *exactly linear* in the transformed challenge — up to
//! the saturation problem: measured soft responses of 0.00/1.00 carry only
//! the information `|Δ/σ| ≳ Φ⁻¹(1 − 1/2N)`. This estimator clamps the
//! measurements into `(0, 1)` at the counter's resolution, probit-inverts
//! them and fits the linear model in Δ/σ space.
//!
//! Compared with the paper's direct regression on `s` (see
//! [`crate::linreg`]):
//!
//! - probit inversion is statistically efficient in the transition region
//!   (it undoes the sigmoid's compression),
//! - but the saturated majority of CRPs contributes only clamped
//!   pseudo-observations, which biases the scale of `θ̂`.
//!
//! The `ablation_estimator` harness quantifies the trade for challenge
//! selection.

use crate::linalg::NotPositiveDefiniteError;
use crate::linreg::LinearRegression;
use puf_core::math::{normal_cdf, normal_quantile};
use puf_core::Challenge;

/// A probit-domain linear model of a PUF's soft responses.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbitRegression {
    inner: LinearRegression,
    clamp: f64,
}

impl ProbitRegression {
    /// Fits from challenges and measured soft responses.
    ///
    /// `evals` is the counter length behind each measurement; saturated
    /// values are clamped to `1/(2·evals)` from the boundary before
    /// inversion (the measurement's actual resolution).
    ///
    /// # Errors
    ///
    /// Returns [`NotPositiveDefiniteError`] when the system is singular.
    ///
    /// # Panics
    ///
    /// Panics on mismatched lengths, empty input, or `evals == 0`.
    pub fn fit(
        challenges: &[Challenge],
        soft_values: &[f64],
        evals: u64,
        ridge: f64,
    ) -> Result<Self, NotPositiveDefiniteError> {
        assert_eq!(challenges.len(), soft_values.len(), "length mismatch");
        assert!(evals > 0, "evals must be positive");
        let clamp = 1.0 / (2.0 * evals as f64);
        let targets: Vec<f64> = soft_values
            .iter()
            .map(|&s| normal_quantile(s.clamp(clamp, 1.0 - clamp)))
            .collect();
        Ok(Self {
            inner: LinearRegression::fit_challenges(challenges, &targets, ridge)?,
            clamp,
        })
    }

    /// The fitted coefficients — an estimate of `w/σ` up to the saturation
    /// bias.
    pub fn theta(&self) -> &[f64] {
        self.inner.theta()
    }

    /// Predicted normalised delay difference `Δ̂/σ`.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn predict_delay(&self, challenge: &Challenge) -> f64 {
        self.inner.predict(challenge)
    }

    /// Predicted soft response `Φ(Δ̂/σ)` (always inside `(0, 1)`, unlike
    /// the direct linear model's predictions).
    pub fn predict_soft(&self, challenge: &Challenge) -> f64 {
        normal_cdf(self.predict_delay(challenge))
    }

    /// The clamp used during fitting (the counter resolution).
    pub fn clamp(&self) -> f64 {
        self.clamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puf_core::challenge::random_challenges;
    use puf_core::{ArbiterPuf, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_delay_scale_from_clean_soft_responses() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::random(32, &mut rng);
        let noise = NoiseModel::paper_default();
        let challenges = random_challenges(32, 4_000, &mut rng);
        let soft: Vec<f64> = challenges
            .iter()
            .map(|c| noise.soft_response(puf.delay_difference(c)))
            .collect();
        let model = ProbitRegression::fit(&challenges, &soft, 100_000, 1e-6).unwrap();

        // Predicted Δ̂/σ must correlate almost perfectly with the true Δ.
        let test = random_challenges(32, 1_000, &mut rng);
        let pred: Vec<f64> = test.iter().map(|c| model.predict_delay(c)).collect();
        let truth: Vec<f64> = test.iter().map(|c| puf.delay_difference(c)).collect();
        let corr = puf_core::math::pearson(&pred, &truth);
        assert!(corr > 0.97, "Δ correlation only {corr}");
    }

    #[test]
    fn predicted_soft_is_a_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = ArbiterPuf::random(16, &mut rng);
        let noise = NoiseModel::paper_default();
        let challenges = random_challenges(16, 1_000, &mut rng);
        let soft: Vec<f64> = challenges
            .iter()
            .map(|c| noise.soft_response(puf.delay_difference(c)))
            .collect();
        let model = ProbitRegression::fit(&challenges, &soft, 10_000, 1e-6).unwrap();
        for c in random_challenges(16, 200, &mut rng) {
            let p = model.predict_soft(&c);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn clamp_matches_counter_resolution() {
        let mut rng = StdRng::seed_from_u64(3);
        let challenges = random_challenges(8, 50, &mut rng);
        let soft = vec![0.5; 50];
        let model = ProbitRegression::fit(&challenges, &soft, 1_000, 1e-3).unwrap();
        assert!((model.clamp() - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn handles_fully_saturated_measurements() {
        // All-saturated training data (an extreme die) must not panic; it
        // yields a degenerate but finite model.
        let mut rng = StdRng::seed_from_u64(4);
        let challenges = random_challenges(8, 100, &mut rng);
        let soft: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        let model = ProbitRegression::fit(&challenges, &soft, 100, 1e-3).unwrap();
        assert!(model.theta().iter().all(|t| t.is_finite()));
    }
}
