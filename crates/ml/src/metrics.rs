//! Classification metrics.

/// Binary confusion counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Predicted 1, actual 1.
    pub true_positives: usize,
    /// Predicted 1, actual 0.
    pub false_positives: usize,
    /// Predicted 0, actual 0.
    pub true_negatives: usize,
    /// Predicted 0, actual 1.
    pub false_negatives: usize,
}

impl Confusion {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics on a length mismatch.
    pub fn from_predictions(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut c = Confusion::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => c.true_positives += 1,
                (true, false) => c.false_positives += 1,
                (false, false) => c.true_negatives += 1,
                (false, true) => c.false_negatives += 1,
            }
        }
        c
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Fraction of correct predictions. `NaN` for an empty tally.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return f64::NAN;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Precision for the positive class. `NaN` when nothing was predicted
    /// positive.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return f64::NAN;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall for the positive class. `NaN` when there are no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return f64::NAN;
        }
        self.true_positives as f64 / denom as f64
    }
}

/// Fraction of matching entries of two boolean slices.
///
/// # Panics
///
/// Panics on a length mismatch or empty input.
pub fn accuracy(predicted: &[bool], actual: &[bool]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty input");
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    correct as f64 / predicted.len() as f64
}

/// Normalised Hamming distance between two response vectors (the
/// authentication-matching metric of classical PUF protocols).
///
/// # Panics
///
/// Panics on a length mismatch or empty input.
pub fn hamming_fraction(a: &[bool], b: &[bool]) -> f64 {
    1.0 - accuracy(a, b)
}

/// Area under the ROC curve via the rank statistic (equivalent to the
/// Mann-Whitney U normalisation); ties share rank mass.
///
/// Returns `NaN` when either class is empty.
///
/// # Panics
///
/// Panics on a length mismatch.
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "length mismatch");
    let positives = labels.iter().filter(|&&l| l).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return f64::NAN;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // puf-lint: allow(L4): NaN scores are rejected by the early return above
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    // Average ranks over tie groups.
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            if labels[idx] {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (positives * (positives + 1)) as f64 / 2.0;
    u / (positives * negatives) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_and_metrics() {
        let predicted = [true, true, false, false, true];
        let actual = [true, false, false, true, true];
        let c = Confusion::from_predictions(&predicted, &actual);
        assert_eq!(c.true_positives, 2);
        assert_eq!(c.false_positives, 1);
        assert_eq!(c.true_negatives, 1);
        assert_eq!(c.false_negatives, 1);
        assert_eq!(c.total(), 5);
        assert!((c.accuracy() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_confusions_are_nan() {
        let c = Confusion::default();
        assert!(c.accuracy().is_nan());
        assert!(c.precision().is_nan());
        assert!(c.recall().is_nan());
    }

    #[test]
    fn accuracy_and_hamming_are_complements() {
        let a = [true, false, true, true];
        let b = [true, true, true, false];
        assert!((accuracy(&a, &b) - 0.5).abs() < 1e-12);
        assert!((hamming_fraction(&a, &b) - 0.5).abs() < 1e-12);
        assert!((accuracy(&a, &a) - 1.0).abs() < 1e-12);
        assert!(hamming_fraction(&a, &a).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatch() {
        accuracy(&[true], &[true, false]);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [false, false, true, true];
        assert!((auc(&scores, &labels) - 1.0).abs() < 1e-12);
        let inverted = [true, true, false, false];
        assert!(auc(&scores, &inverted).abs() < 1e-12);
    }

    #[test]
    fn auc_random_scores_near_half() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let scores: Vec<f64> = (0..5_000).map(|_| rng.gen()).collect();
        let labels: Vec<bool> = (0..5_000).map(|_| rng.gen()).collect();
        assert!((auc(&scores, &labels) - 0.5).abs() < 0.03);
    }

    #[test]
    fn auc_handles_ties() {
        // All scores equal → AUC is exactly 0.5 by the tie convention.
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        assert!((auc(&scores, &labels) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_is_nan() {
        assert!(auc(&[0.1, 0.2], &[true, true]).is_nan());
    }
}
