//! Minimal dense linear algebra: row-major matrices, Cholesky solves and
//! the vector helpers the optimizers need.
//!
//! Deliberately small — just enough for ridge-regularised normal equations
//! (enrollment linear regression) and batched MLP forward/backward passes.
//! Products route through the cache-blocked kernels in [`crate::gemm`];
//! the naive loops survive as [`Matrix::matmul_reference`] for the
//! proptests and before/after benchmarks.

use crate::gemm::{self, GemmScratch};
use crate::parallel;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self · other` through the blocked kernel.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into_with(other, &mut out, &mut GemmScratch::default());
        out
    }

    /// Matrix product `self · other` written into `out` (fully
    /// overwritten) — the allocation-free form of [`Matrix::matmul`].
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch or if `out` has the wrong
    /// shape.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_into_with(other, out, &mut GemmScratch::default());
    }

    /// [`Matrix::matmul_into`] with a caller-held [`GemmScratch`], so hot
    /// loops also reuse the packing panel across calls.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch or if `out` has the wrong
    /// shape.
    pub fn matmul_into_with(&self, other: &Matrix, out: &mut Matrix, scratch: &mut GemmScratch) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        gemm::gemm_into(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
            scratch,
        );
    }

    /// Naive triple-loop product — the pre-blocking reference kept as the
    /// correctness oracle for the blocked kernel (proptests) and the
    /// baseline for the before/after benchmarks.
    ///
    /// # Panics
    ///
    /// Panics on an inner-dimension mismatch.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        gemm::gemm_reference(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        out
    }

    /// Matrix-vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|i| dot(self.row(i), v)).collect()
    }

    /// `Aᵀ · A + λI` — the ridge-regularised Gram matrix of the normal
    /// equations, computed without materialising the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `ridge` is negative.
    pub fn gram_ridge(&self, ridge: f64) -> Matrix {
        assert!(ridge >= 0.0, "ridge must be non-negative");
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                let grow = g.row_mut(i);
                for (j, &xj) in row.iter().enumerate() {
                    grow[j] += xi * xj;
                }
            }
        }
        for i in 0..n {
            g[(i, i)] += ridge;
        }
        g
    }

    /// `Aᵀ · y`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != rows`.
    pub fn t_matvec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows, "t_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &yr) in y.iter().enumerate() {
            if yr == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += yr * x;
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}]", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Fused normal-equation products: one streaming pass over `x` yields both
/// `xᵀx + ridge·I` and `xᵀy`, with no transpose and no intermediate
/// allocation beyond the outputs.
///
/// The row sum is fanned out over [`crate::parallel`]'s fixed-order chunked
/// reduction, so the result is bit-identical at any thread count; only the
/// upper triangle is accumulated, then mirrored.
///
/// # Panics
///
/// Panics if `y.len() != x.rows()` or `ridge < 0`.
pub fn normal_equations(x: &Matrix, y: &[f64], ridge: f64) -> (Matrix, Vec<f64>) {
    assert_eq!(y.len(), x.rows(), "target length mismatch");
    assert!(ridge >= 0.0, "ridge must be non-negative");
    let n = x.cols();
    let rows = x.rows();
    puf_telemetry::counter!("ml.linreg.normal_eq.rows").add(rows as u64);
    let mut acc = vec![0.0; n * n + n];
    let pool = parallel::Pool::new();
    parallel::reduce_rows(
        rows,
        parallel::worker_count(rows),
        &mut acc,
        &pool,
        || (),
        |(), range, acc| {
            let x_rows = &x.as_slice()[range.start * n..range.end * n];
            gemm::syrk_xtv_accumulate(n, x_rows, &y[range], acc);
            0.0
        },
    );
    let xtv = acc.split_off(n * n);
    let mut gram = Matrix::from_vec(n, n, acc);
    for i in 0..n {
        gram[(i, i)] += ridge;
        for j in (i + 1)..n {
            gram[(j, i)] = gram[(i, j)];
        }
    }
    (gram, xtv)
}

/// Error raised when a Cholesky factorisation encounters a non-positive
/// pivot (the matrix is not positive definite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotPositiveDefiniteError {
    /// Index of the failing pivot.
    pub pivot: usize,
}

impl fmt::Display for NotPositiveDefiniteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix is not positive definite (pivot {} ≤ 0)",
            self.pivot
        )
    }
}

impl std::error::Error for NotPositiveDefiniteError {}

/// Solves the symmetric positive-definite system `A·x = b` by Cholesky
/// factorisation (`A = L·Lᵀ`, forward then back substitution).
///
/// # Errors
///
/// Returns [`NotPositiveDefiniteError`] if a pivot is non-positive.
///
/// # Panics
///
/// Panics if `A` is not square or `b` has the wrong length.
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, NotPositiveDefiniteError> {
    assert_eq!(a.rows(), a.cols(), "cholesky_solve needs a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length mismatch");
    let n = a.rows();
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NotPositiveDefiniteError { pivot: i });
                }
                l[i * n + i] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward substitution: L·y = b.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * y[k];
        }
        y[i] = sum / l[i * n + i];
    }
    // Back substitution: Lᵀ·x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

/// Inner product of two equal-length slices.
///
/// # Panics
///
/// Panics on a length mismatch (debug builds).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha · x`.
///
/// # Panics
///
/// Panics on a length mismatch (debug builds).
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `x ← alpha · x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        let id = Matrix::identity(3);
        assert_eq!(id[(1, 1)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn matmul_hand_checked() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_matmul_matches_reference_on_odd_shapes() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in &[(1, 1, 1), (3, 66, 35), (17, 300, 5), (4, 8, 8), (2, 259, 9)] {
            let mut a = Matrix::zeros(m, k);
            let mut b = Matrix::zeros(k, n);
            for v in a.as_mut_slice() {
                *v = rng.gen_range(-1.0..1.0);
            }
            for v in b.as_mut_slice() {
                *v = rng.gen_range(-1.0..1.0);
            }
            let blocked = a.matmul(&b);
            let reference = a.matmul_reference(&b);
            for (g, w) in blocked.as_slice().iter().zip(reference.as_slice()) {
                assert!((g - w).abs() < 1e-12 * (1.0 + w.abs()), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn matmul_into_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, -1.0], vec![0.5, -3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 1.0], vec![-1.0, 3.0]]);
        let mut out = Matrix::zeros(2, 2);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn normal_equations_match_gram_ridge_and_t_matvec() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(8);
        let mut x = Matrix::zeros(57, 9);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let y: Vec<f64> = (0..57).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let (gram, xtv) = normal_equations(&x, &y, 0.25);
        let want_gram = x.gram_ridge(0.25);
        let want_xtv = x.t_matvec(&y);
        for (g, w) in gram.as_slice().iter().zip(want_gram.as_slice()) {
            assert!((g - w).abs() < 1e-10);
        }
        for (g, w) in xtv.iter().zip(&want_xtv) {
            assert!((g - w).abs() < 1e-10);
        }
        // Symmetry is exact (mirrored, not recomputed).
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(gram[(i, j)].to_bits(), gram[(j, i)].to_bits());
            }
        }
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![3.0, 4.0, -1.0]]);
        let c = a.matmul(&Matrix::identity(3));
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_and_t_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn gram_ridge_matches_explicit_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram_ridge(0.5);
        let explicit = a.transpose().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                let want = explicit[(i, j)] + if i == j { 0.5 } else { 0.0 };
                assert!((g[(i, j)] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [2, 5] → x = [-0.5, 2].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let x = cholesky_solve(&a, &[2.0, 5.0]).unwrap();
        assert!((x[0] + 0.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn cholesky_large_random_spd() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20;
        let mut b_mat = Matrix::zeros(n, n);
        for v in b_mat.as_mut_slice() {
            *v = rng.gen_range(-1.0..1.0);
        }
        let a = b_mat.transpose().matmul(&b_mat).gram_ridge(0.0); // (BᵀB)ᵀ(BᵀB)
        let mut a = a;
        for i in 0..n {
            a[(i, i)] += 1.0; // ensure strictly PD
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = cholesky_solve(&a, &b).unwrap();
        let resid: Vec<f64> = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(ax, bi)| ax - bi)
            .collect();
        assert!(norm(&resid) < 1e-8, "residual {}", norm(&resid));
    }

    #[test]
    fn vector_helpers() {
        let mut y = vec![1.0, 2.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 10.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn debug_render_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m:?}").is_empty());
    }
}
