//! Property tests for the blocked GEMM / fused-training kernels, plus the
//! thread-count determinism guarantee for trained models.
//!
//! The blocked kernels must agree with the naive triple-loop reference
//! within ULP-scale tolerance on *every* shape — especially the awkward
//! ones (1×1, tall-skinny, wide, sizes that are not multiples of the
//! register tile) — and training an MLP must produce bit-identical
//! parameters no matter how many worker threads carry the gradient.

use proptest::prelude::*;
use puf_ml::gemm::{gemm_into, gemm_reference, GemmScratch};
use puf_ml::linalg::Matrix;
use puf_ml::mlp::{Mlp, MlpConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative tolerance for blocked-vs-reference comparisons: the blocked
/// kernel reassociates sums within a k-block, so demand agreement to a few
/// hundred ULPs of the accumulated magnitude, far tighter than any model
/// quality effect.
fn close(a: f64, b: f64, scale: f64) -> bool {
    (a - b).abs() <= 1e-12 * (1.0 + scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked GEMM == reference GEMM on arbitrary small shapes, including
    /// 1×1 and every non-multiple-of-block remainder combination.
    #[test]
    fn blocked_gemm_matches_reference(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mut blocked = vec![0.0; m * n];
        let mut reference = vec![0.0; m * n];
        gemm_into(m, k, n, &a, &b, &mut blocked, &mut GemmScratch::default());
        gemm_reference(m, k, n, &a, &b, &mut reference);
        let scale = k as f64 * 4.0;
        for (i, (&got, &want)) in blocked.iter().zip(&reference).enumerate() {
            prop_assert!(close(got, want, scale), "element {i}: {got} vs {want}");
        }
    }

    /// Tall-skinny and wide extremes: dimensions that stress panel packing
    /// (k spanning multiple KC blocks needs k > 256, covered by the
    /// dedicated case below; here rows ≫ cols and cols ≫ rows).
    #[test]
    fn blocked_gemm_matches_reference_on_skewed_shapes(
        long in 30usize..120,
        short in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for &(m, k, n) in &[(long, short, short), (short, long, short), (short, short, long)] {
            let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut blocked = vec![0.0; m * n];
            let mut reference = vec![0.0; m * n];
            gemm_into(m, k, n, &a, &b, &mut blocked, &mut GemmScratch::default());
            gemm_reference(m, k, n, &a, &b, &mut reference);
            let scale = k as f64 * 4.0;
            for (&got, &want) in blocked.iter().zip(&reference) {
                prop_assert!(close(got, want, scale), "({m}×{k}×{n}): {got} vs {want}");
            }
        }
    }

    /// Fused MLP forward+backward == the retained naive reference
    /// implementation, across random architectures and batch sizes.
    #[test]
    fn fused_mlp_loss_grad_matches_reference(
        rows in 1usize..48,
        dim in 1usize..8,
        h1 in 1usize..9,
        h2 in 0usize..7,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hidden = if h2 == 0 { vec![h1] } else { vec![h1, h2] };
        let config = MlpConfig { hidden, alpha: 0.01, ..MlpConfig::tiny() };
        let mlp = Mlp::new(dim, &config, &mut rng);
        let mut x = Matrix::zeros(rows, dim);
        for v in x.as_mut_slice() {
            *v = rng.gen_range(-2.0..2.0);
        }
        let y: Vec<f64> = (0..rows).map(|_| f64::from(rng.gen::<bool>())).collect();
        let params = mlp.params().to_vec();
        let mut grad_fused = vec![0.0; params.len()];
        let mut grad_ref = vec![0.0; params.len()];
        let fused = mlp.loss_value_grad(&params, &x, &y, config.alpha, &mut grad_fused);
        let reference =
            mlp.loss_value_grad_reference(&params, &x, &y, config.alpha, &mut grad_ref);
        prop_assert!(close(fused, reference, reference.abs()), "loss {fused} vs {reference}");
        let scale = rows as f64;
        for (i, (&g, &r)) in grad_fused.iter().zip(&grad_ref).enumerate() {
            prop_assert!(close(g, r, scale + r.abs()), "grad[{i}]: {g} vs {r}");
        }
    }
}

/// k > KC (256) forces the multi-panel k-blocking path.
#[test]
fn blocked_gemm_spans_multiple_k_blocks() {
    let (m, k, n) = (7, 600, 11);
    let mut rng = StdRng::seed_from_u64(99);
    let a: Vec<f64> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f64> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut blocked = vec![0.0; m * n];
    let mut reference = vec![0.0; m * n];
    gemm_into(m, k, n, &a, &b, &mut blocked, &mut GemmScratch::default());
    gemm_reference(m, k, n, &a, &b, &mut reference);
    for (&got, &want) in blocked.iter().zip(&reference) {
        assert!(close(got, want, k as f64), "{got} vs {want}");
    }
}

/// The acceptance-criterion test: a trained model's parameters are
/// bit-for-bit identical whether the gradient ran on 1, 2, or many worker
/// threads. The dataset is large enough (4096 rows → 4 reduction chunks)
/// that multi-worker runs genuinely fan out.
#[test]
fn trained_model_is_bit_identical_across_worker_counts() {
    let rows = 4096;
    let stages = 16;
    let mut rng = StdRng::seed_from_u64(7);
    let mut x = Matrix::zeros(rows, stages);
    for v in x.as_mut_slice() {
        *v = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    }
    let secret: Vec<f64> = (0..stages).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let y: Vec<f64> = (0..rows)
        .map(|i| {
            let s: f64 = x.row(i).iter().zip(&secret).map(|(a, b)| a * b).sum();
            f64::from(s > 0.0)
        })
        .collect();

    let train_with = |workers: usize| {
        let config = MlpConfig {
            hidden: vec![8, 6],
            alpha: 1e-4,
            max_iterations: 12,
            tolerance: 1e-9,
            workers,
        };
        let mut seed_rng = StdRng::seed_from_u64(42);
        let mut mlp = Mlp::new(stages, &config, &mut seed_rng);
        mlp.train(&x, &y, &config);
        mlp.params()
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<u64>>()
    };

    let one = train_with(1);
    for workers in [2, 3, 8] {
        assert_eq!(
            train_with(workers),
            one,
            "training with {workers} workers diverged from single-thread bits"
        );
    }
}
