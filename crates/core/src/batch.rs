//! Batched CRP evaluation engine: sign-compressed feature matrices and
//! blocked, lane-parallel delta kernels.
//!
//! The paper's scale is ~10¹² challenge-response measurements (1,000,000
//! challenges × 9 V/T corners × 100,000 repeats). Evaluating that volume
//! challenge-by-challenge pays, per CRP, for a fresh feature `Vec`
//! allocation, a parity transform and `n` latency-bound scalar dot
//! products. This module amortizes all three:
//!
//! - [`FeatureMatrix`] stores the parity transforms `φ(cᵢ)` of a whole
//!   challenge batch, built once per batch via
//!   [`Challenge::features_into`]. Every transform entry is exactly `±1.0`
//!   (a product of `1 − 2cⱼ` terms), so the matrix keeps only the *sign
//!   planes*: one `u32` per ([`LANES`]-row group, feature), ~4 bits per
//!   CRP instead of 264 bytes. A 1M-challenge batch is ~4 MiB and stays
//!   cache-resident instead of streaming hundreds of MiB from DRAM.
//!   Build it once and reuse it across every XOR member and every V/T
//!   corner.
//! - The kernels walk the matrix in [`BLOCK_ROWS`]-row blocks: each block's
//!   sign planes are expanded once into a tiny L1-resident `±1.0`
//!   feature-major scratch, then every member's dot products run over it
//!   with [`LANES`] independent per-row accumulator chains — contiguous
//!   SIMD loads, one broadcast weight per feature, no strided access.
//! - The batched [`ArbiterPuf`]/[`XorPuf`] entry points
//!   (`delta_batch`, `response_batch`, `soft_response_batch`, …) and
//!   [`FeatureMatrix::deltas_into`] all run on this block pipeline.
//!
//! **Bit-exactness.** Expanding a sign bit reproduces the transform value
//! exactly (`φⱼ ∈ {+1.0, −1.0}`, and `±1.0 × w` is an exact sign flip),
//! and every kernel accumulates each row in ascending feature order — the
//! order of the scalar [`FeatureVector::dot`](crate::FeatureVector::dot) —
//! so batched deltas, responses and soft responses are bit-identical to
//! the scalar paths, not merely close. SIMD lanes are independent rows;
//! no single row's sum is ever reordered.
//!
//! Throughput of every batch entry point is observable via the
//! `eval.batch` span and the `eval.batch.crps_per_sec` gauge /
//! `eval.batch.crps` counter when telemetry is enabled (the bit-sliced
//! kernels in [`crate::bitslice`] report under `eval.bitslice.*` instead,
//! so the two paths stay distinguishable in traces and reports). With structured
//! tracing enabled (`xorpuf --trace`), each entry point additionally opens
//! a named trace span (`eval.batch.delta`, `eval.batch.response`, …) and
//! the blocked driver marks every block expansion with
//! `eval.batch.block`, so a flamegraph attributes time between expansion
//! and the per-member kernels. Disabled tracing costs one relaxed atomic
//! load per span site.

use crate::arbiter::ArbiterPuf;
use crate::challenge::Challenge;
use crate::math::normal_cdf;
use crate::rngx;
use crate::xor::XorPuf;
use crate::{PufError, MAX_STAGES};
use rand::Rng;

/// Rows per interleave group — one sign-plane `u32` covers one group, and
/// the expanded scratch gives the kernel [`LANES`] independent per-row
/// accumulator chains (eight 4-wide or four 8-wide vector registers),
/// enough to hide the vector-add latency.
const LANES: usize = 32;

/// Rows per processing block (a multiple of [`LANES`]): `64 × 33 × 8 B ≈
/// 17 KiB` of expanded scratch at the paper's 32 stages — L1-resident, so
/// every XOR member's pass over the block hits near cache.
const BLOCK_ROWS: usize = 64;

/// Sequential inner product — the scalar reference order.
///
/// This is the exact summation order of
/// [`FeatureVector::dot`](crate::FeatureVector::dot); the batched kernels
/// reproduce it per row, which is what makes batch and scalar results
/// bit-identical.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Expands a block's sign planes into the feature-major `±1.0` scratch:
/// `t[(g * width + j) * LANES + r]` is feature `j` of local-group `g`'s
/// row `r` (`+1.0` where the plane bit is set, `−1.0` otherwise).
///
/// Phantom rows past the end of a partial final group expand like any
/// other lane; their deltas are computed and discarded by the callers.
fn expand_block(planes: &[u32], t: &mut [f64]) {
    for (&m, lanes) in planes.iter().zip(t.chunks_exact_mut(LANES)) {
        for (r, v) in lanes.iter_mut().enumerate() {
            *v = if (m >> r) & 1 == 1 { 1.0 } else { -1.0 };
        }
    }
}

/// The lane-parallel kernel over an expanded block: `out[i] = rows[i] · w`
/// with [`LANES`] rows per group sharing one pass over the weights
/// (contiguous lane loads, one broadcast weight per feature).
///
/// Each lane is one row accumulated in ascending feature order, so the
/// result is bit-identical to [`dot`] per row. `out.len()` must be a
/// multiple of [`LANES`] covering the whole expanded block; entries for
/// phantom rows are garbage the caller slices off.
fn deltas_from_expanded(t: &[f64], width: usize, weights: &[f64], out: &mut [f64]) {
    let group = LANES * width;
    for (grp, lanes_out) in t.chunks_exact(group).zip(out.chunks_exact_mut(LANES)) {
        let mut acc = [0.0f64; LANES];
        for (col, &w) in grp.chunks_exact(LANES).zip(weights) {
            for (a, &v) in acc.iter_mut().zip(col) {
                *a += v * w;
            }
        }
        lanes_out.copy_from_slice(&acc);
    }
}

/// Blocked multi-member evaluation driver: walks the matrix in
/// [`BLOCK_ROWS`] row blocks, expands each block's sign planes into the
/// L1-resident scratch once, then computes every member's deltas for the
/// block and hands them to `consume(member_index, first_row, deltas)`.
///
/// The expansion is paid once per block and amortised over all members;
/// the per-member pass is pure L1-resident SIMD — this is what makes the
/// XOR batch paths scale past the latency-bound scalar loop.
fn blocked_member_deltas(
    features: &FeatureMatrix,
    members: &[ArbiterPuf],
    mut consume: impl FnMut(usize, usize, &[f64]),
) {
    let width = features.width();
    let rows = features.len();
    let mut t = vec![0.0f64; BLOCK_ROWS * width];
    let mut deltas = [0.0f64; BLOCK_ROWS];
    let block_planes = (BLOCK_ROWS / LANES) * width;
    for (bi, planes) in features.planes.chunks(block_planes).enumerate() {
        let _block = puf_telemetry::trace_span!("eval.batch.block");
        let first_row = bi * BLOCK_ROWS;
        let block_rows = BLOCK_ROWS.min(rows - first_row);
        expand_block(planes, &mut t[..planes.len() * LANES]);
        let padded = planes.len() / width * LANES;
        for (mi, m) in members.iter().enumerate() {
            deltas_from_expanded(
                &t[..planes.len() * LANES],
                width,
                m.weights(),
                &mut deltas[..padded],
            );
            consume(mi, first_row, &deltas[..block_rows]);
        }
    }
}

/// RAII recorder for batch-evaluation throughput: on drop, adds the batch's
/// CRP count to the `<kernel>.crps` counter and publishes the observed
/// rate on the `<kernel>.crps_per_sec` gauge, where `<kernel>` names the
/// evaluation path (`eval.batch` for the expand-and-multiply engine here,
/// `eval.bitslice` for [`crate::bitslice`]), so traces and reports
/// distinguish which kernel produced the throughput.
///
/// Pair it with a `span!` of the same kernel name at batch entry points;
/// both are no-ops (beyond one `Instant::now`) while telemetry is disabled.
#[derive(Debug)]
pub struct ThroughputGuard {
    kernel: &'static str,
    crps: u64,
    start: std::time::Instant,
}

/// Starts a [`ThroughputGuard`] covering `crps` challenge-response pairs
/// evaluated by `kernel` (`"eval.batch"` or `"eval.bitslice"`; anything
/// else is attributed to `eval.batch`).
pub fn throughput_guard(kernel: &'static str, crps: usize) -> ThroughputGuard {
    ThroughputGuard {
        kernel,
        crps: crps as u64,
        // puf-lint: allow(L3): telemetry-only timing; feeds the crps_per_sec gauge, never results
        start: std::time::Instant::now(),
    }
}

impl Drop for ThroughputGuard {
    fn drop(&mut self) {
        // Kernel names form a closed set so each resolves to a statically
        // interned counter/gauge pair (the telemetry macros cache per site).
        let (crps, rate) = match self.kernel {
            "eval.bitslice" => (
                puf_telemetry::counter!("eval.bitslice.crps"),
                puf_telemetry::gauge!("eval.bitslice.crps_per_sec"),
            ),
            _ => (
                puf_telemetry::counter!("eval.batch.crps"),
                puf_telemetry::gauge!("eval.batch.crps_per_sec"),
            ),
        };
        crps.add(self.crps);
        let secs = self.start.elapsed().as_secs_f64();
        if secs > 0.0 && self.crps > 0 {
            rate.set(self.crps as f64 / secs);
        }
    }
}

/// The parity transforms of a challenge batch, sign-compressed: every
/// transform entry is exactly `±1.0`, so row `i`'s `stages + 1`-wide
/// `φ(cᵢ)` is stored as sign bits packed into per-feature planes
/// (`planes[g * width + j]` bit `r` covers row `g * 32 + r`), ~4 bits per
/// CRP. The kernels expand blocks back to `±1.0` in L1 on the fly —
/// bit-exactly, since expansion reproduces the transform values verbatim.
///
/// The source challenges are retained (16 bytes each) because downstream
/// consumers — e.g. the silicon model's per-challenge mismatch hash — need
/// the raw bits alongside the transform.
///
/// Build once per batch, then reuse across every XOR member and every
/// operating condition; nothing in the matrix depends on either.
///
/// ```
/// use puf_core::{batch::FeatureMatrix, Challenge, XorPuf};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let xor = XorPuf::random(4, 32, &mut rng);
/// let cs: Vec<Challenge> = (0..64).map(|_| Challenge::random(32, &mut rng)).collect();
/// let fm = FeatureMatrix::from_challenges(&cs)?;
/// let batch = xor.response_batch(&fm);
/// assert_eq!(batch, cs.iter().map(|c| xor.response(c)).collect::<Vec<_>>());
/// # Ok::<(), puf_core::PufError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureMatrix {
    challenges: Vec<Challenge>,
    /// Sign planes, group-major: `planes[g * width + j]` bit `r` is set iff
    /// `φⱼ(c)` of row `g * LANES + r` is `+1.0`. Phantom rows of a partial
    /// final group are zero bits.
    planes: Vec<u32>,
    width: usize,
}

impl FeatureMatrix {
    /// Builds the matrix for `challenges`, all of which must have `stages`
    /// stages. Allows an empty batch (zero rows).
    ///
    /// # Errors
    ///
    /// [`PufError::InvalidStageCount`] for an out-of-range `stages`,
    /// [`PufError::StageMismatch`] if any challenge disagrees.
    pub fn new(stages: usize, challenges: &[Challenge]) -> Result<Self, PufError> {
        if stages == 0 || stages > MAX_STAGES {
            return Err(PufError::InvalidStageCount { stages });
        }
        let width = stages + 1;
        let groups = challenges.len().div_ceil(LANES);
        let mut planes = vec![0u32; groups * width];
        let mut phi = vec![0.0f64; width];
        for (i, c) in challenges.iter().enumerate() {
            if c.stages() != stages {
                return Err(PufError::StageMismatch {
                    expected: stages,
                    actual: c.stages(),
                });
            }
            c.features_into(&mut phi);
            let (g, r) = (i / LANES, i % LANES);
            for (j, &v) in phi.iter().enumerate() {
                planes[g * width + j] |= u32::from(v > 0.0) << r;
            }
        }
        Ok(Self {
            challenges: challenges.to_vec(),
            planes,
            width,
        })
    }

    /// Builds the matrix taking the stage count from the first challenge.
    ///
    /// # Errors
    ///
    /// [`PufError::InvalidParameter`] for an empty batch (use
    /// [`FeatureMatrix::new`] when zero rows are legitimate),
    /// [`PufError::StageMismatch`] on inconsistent stage counts.
    pub fn from_challenges(challenges: &[Challenge]) -> Result<Self, PufError> {
        let first = challenges.first().ok_or(PufError::InvalidParameter {
            name: "challenges",
            constraint:
                "a feature matrix needs at least one challenge (or an explicit stage count)",
        })?;
        Self::new(first.stages(), challenges)
    }

    /// Number of rows (challenges) in the batch.
    pub fn len(&self) -> usize {
        self.challenges.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.challenges.is_empty()
    }

    /// Stage count of the batch's challenges.
    pub fn stages(&self) -> usize {
        self.width - 1
    }

    /// Row width, `stages + 1`.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Row `i`, materialised: the transform `φ(cᵢ)` expanded from its sign
    /// bits (every entry `±1.0`). Allocates a fresh `Vec` per call — for
    /// repeated row access use [`FeatureMatrix::row_into`] with a reused
    /// buffer, and for bulk evaluation use [`FeatureMatrix::deltas_into`],
    /// which never materialises rows.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        let mut out = vec![0.0f64; self.width];
        self.row_into(i, &mut out);
        out
    }

    /// Allocation-free [`FeatureMatrix::row`]: expands row `i`'s transform
    /// `φ(cᵢ)` from its sign bits into `out` (every entry `±1.0`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or `out.len() != width()`.
    pub fn row_into(&self, i: usize, out: &mut [f64]) {
        assert!(i < self.len(), "row index out of range");
        assert_eq!(out.len(), self.width, "row buffer width mismatch");
        let (g, r) = (i / LANES, i % LANES);
        for (v, &m) in out
            .iter_mut()
            .zip(&self.planes[g * self.width..(g + 1) * self.width])
        {
            *v = if (m >> r) & 1 == 1 { 1.0 } else { -1.0 };
        }
    }

    /// Writes the 64-row bit-sliced plane words of block `block` (rows
    /// `block * 64 ..`): `out[j]` bit `r` is set iff `φⱼ` of row
    /// `block * 64 + r` is `+1.0`. Each word fuses two consecutive
    /// [`LANES`]-row sign planes; phantom rows past the end of the batch
    /// are zero bits. This is the transposed view the [`crate::bitslice`]
    /// kernels consume directly.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != width()` or the block is out of range.
    pub(crate) fn plane_words_into(&self, block: usize, out: &mut [u64]) {
        assert_eq!(out.len(), self.width, "plane word buffer width mismatch");
        let lo = block * 2 * self.width;
        let hi = lo + self.width;
        assert!(lo < self.planes.len(), "block index out of range");
        for (j, w) in out.iter_mut().enumerate() {
            let low = u64::from(self.planes[lo + j]);
            let high = self
                .planes
                .get(hi + j)
                .map_or(0u64, |&m| u64::from(m) << 32);
            *w = low | high;
        }
    }

    /// The source challenges, in row order.
    pub fn challenges(&self) -> &[Challenge] {
        &self.challenges
    }

    /// Writes `out[i] = φ(cᵢ) · weights` for every row using the blocked
    /// lane-parallel kernel. Bit-identical to calling [`dot`] per row.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != width()` or `out.len() != len()`.
    pub fn deltas_into(&self, weights: &[f64], out: &mut [f64]) {
        assert_eq!(weights.len(), self.width, "weight length mismatch");
        assert_eq!(out.len(), self.len(), "output length mismatch");
        let width = self.width;
        let mut t = vec![0.0f64; BLOCK_ROWS * width];
        let mut deltas = [0.0f64; BLOCK_ROWS];
        let block_planes = (BLOCK_ROWS / LANES) * width;
        for (planes, out_block) in self
            .planes
            .chunks(block_planes)
            .zip(out.chunks_mut(BLOCK_ROWS))
        {
            expand_block(planes, &mut t[..planes.len() * LANES]);
            let padded = planes.len() / width * LANES;
            deltas_from_expanded(
                &t[..planes.len() * LANES],
                width,
                weights,
                &mut deltas[..padded],
            );
            out_block.copy_from_slice(&deltas[..out_block.len()]);
        }
    }
}

impl ArbiterPuf {
    fn check_batch(&self, features: &FeatureMatrix) {
        assert_eq!(
            features.stages(),
            self.stages(),
            "feature matrix stage count does not match the PUF"
        );
    }

    /// Batched delay differences `Δ(cᵢ) = w · φ(cᵢ)`, written into `out`.
    ///
    /// Bit-identical to [`ArbiterPuf::delay_difference`] per challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or if `out.len() != features.len()`.
    pub fn delta_batch_into(&self, features: &FeatureMatrix, out: &mut [f64]) {
        self.check_batch(features);
        features.deltas_into(self.weights(), out);
    }

    /// Batched delay differences for a whole feature matrix.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn delta_batch(&self, features: &FeatureMatrix) -> Vec<f64> {
        let _span = puf_telemetry::span!("eval.batch");
        let _trace = puf_telemetry::trace_span!("eval.batch.delta");
        let _throughput = throughput_guard("eval.batch", features.len());
        let mut out = vec![0.0; features.len()];
        self.delta_batch_into(features, &mut out);
        out
    }

    /// Batched noiseless responses, bit-identical to
    /// [`ArbiterPuf::response`] per challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response_batch(&self, features: &FeatureMatrix) -> Vec<bool> {
        let _span = puf_telemetry::span!("eval.batch");
        let _trace = puf_telemetry::trace_span!("eval.batch.response");
        let _throughput = throughput_guard("eval.batch", features.len());
        let mut deltas = vec![0.0; features.len()];
        self.delta_batch_into(features, &mut deltas);
        deltas.iter().map(|&d| d > 0.0).collect()
    }

    /// Batched analytic soft responses `Φ(Δ(cᵢ)/σ)`, bit-identical to
    /// [`ArbiterPuf::soft_response`] per challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or an invalid `sigma_noise`.
    pub fn soft_response_batch(&self, features: &FeatureMatrix, sigma_noise: f64) -> Vec<f64> {
        assert!(
            sigma_noise >= 0.0 && sigma_noise.is_finite(),
            "sigma_noise must be finite and non-negative"
        );
        let _span = puf_telemetry::span!("eval.batch");
        let _trace = puf_telemetry::trace_span!("eval.batch.soft");
        let _throughput = throughput_guard("eval.batch", features.len());
        let mut deltas = vec![0.0; features.len()];
        self.delta_batch_into(features, &mut deltas);
        for d in &mut deltas {
            *d = if sigma_noise == 0.0 {
                if *d > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                normal_cdf(*d / sigma_noise)
            };
        }
        deltas
    }
}

impl XorPuf {
    fn check_batch(&self, features: &FeatureMatrix) {
        assert_eq!(
            features.stages(),
            self.stages(),
            "feature matrix stage count does not match the PUF"
        );
    }

    /// Batched per-member delay differences, member-major: entry
    /// `m * features.len() + i` is member `m`'s delta on challenge `i`.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn delta_batch(&self, features: &FeatureMatrix) -> Vec<f64> {
        self.check_batch(features);
        let _span = puf_telemetry::span!("eval.batch");
        let _trace = puf_telemetry::trace_span!("eval.batch.delta");
        let _throughput = throughput_guard("eval.batch", features.len());
        let rows = features.len();
        let mut out = vec![0.0; self.n() * rows];
        blocked_member_deltas(features, self.members(), |mi, first_row, deltas| {
            out[mi * rows + first_row..mi * rows + first_row + deltas.len()]
                .copy_from_slice(deltas);
        });
        out
    }

    /// Batched noiseless XOR responses, bit-identical to
    /// [`XorPuf::response`] per challenge.
    ///
    /// The matrix is walked in row blocks so each block stays cache-hot
    /// while every member consumes it.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response_batch(&self, features: &FeatureMatrix) -> Vec<bool> {
        self.check_batch(features);
        let _span = puf_telemetry::span!("eval.batch");
        let _trace = puf_telemetry::trace_span!("eval.batch.response");
        let _throughput = throughput_guard("eval.batch", features.len());
        let mut bits = vec![false; features.len()];
        blocked_member_deltas(features, self.members(), |_, first_row, deltas| {
            for (b, &d) in bits[first_row..].iter_mut().zip(deltas) {
                *b ^= d > 0.0;
            }
        });
        bits
    }

    /// Batched analytic XOR soft responses (piling-up identity),
    /// bit-identical to [`XorPuf::soft_response`] per challenge.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or an invalid `sigma_noise`.
    pub fn soft_response_batch(&self, features: &FeatureMatrix, sigma_noise: f64) -> Vec<f64> {
        self.check_batch(features);
        assert!(
            sigma_noise >= 0.0 && sigma_noise.is_finite(),
            "sigma_noise must be finite and non-negative"
        );
        let _span = puf_telemetry::span!("eval.batch");
        let _trace = puf_telemetry::trace_span!("eval.batch.soft");
        let _throughput = throughput_guard("eval.batch", features.len());
        let mut prod = vec![1.0f64; features.len()];
        blocked_member_deltas(features, self.members(), |_, first_row, deltas| {
            for (pr, &d) in prod[first_row..].iter_mut().zip(deltas) {
                let p = if sigma_noise == 0.0 {
                    if d > 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                } else {
                    normal_cdf(d / sigma_noise)
                };
                *pr *= 1.0 - 2.0 * p;
            }
        });
        for pr in &mut prod {
            *pr = (1.0 - *pr) / 2.0;
        }
        prod
    }

    /// Batched noisy evaluations. Noise is drawn challenge-major,
    /// member-minor — the same stream order as calling
    /// [`XorPuf::eval_noisy`] per challenge with the same RNG, so seeded
    /// runs are bit-identical to the scalar loop.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or an invalid `sigma_noise`.
    pub fn eval_noisy_batch<R: Rng + ?Sized>(
        &self,
        features: &FeatureMatrix,
        sigma_noise: f64,
        rng: &mut R,
    ) -> Vec<bool> {
        self.check_batch(features);
        let _span = puf_telemetry::span!("eval.batch");
        let _trace = puf_telemetry::trace_span!("eval.batch.noisy");
        let _throughput = throughput_guard("eval.batch", features.len());
        let n = self.n();
        let mut bits = Vec::with_capacity(features.len());
        // Deltas for a whole block are computed member-major (kernel
        // friendly), then the noise draws replay challenge-major.
        let mut deltas = vec![0.0f64; n * BLOCK_ROWS];
        let mut block_rows = 0usize;
        let mut flush = |deltas: &[f64], rows: usize, bits: &mut Vec<bool>| {
            for i in 0..rows {
                let mut acc = false;
                for m in 0..n {
                    let delta = deltas[m * BLOCK_ROWS + i];
                    acc ^= delta + rngx::normal(rng, 0.0, sigma_noise) > 0.0;
                }
                bits.push(acc);
            }
        };
        blocked_member_deltas(features, self.members(), |mi, _, block_deltas| {
            deltas[mi * BLOCK_ROWS..mi * BLOCK_ROWS + block_deltas.len()]
                .copy_from_slice(block_deltas);
            block_rows = block_deltas.len();
            if mi + 1 == n {
                flush(&deltas, block_rows, &mut bits);
            }
        });
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_batch(
        seed: u64,
        n: usize,
        stages: usize,
        count: usize,
    ) -> (XorPuf, Vec<Challenge>, FeatureMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xor = XorPuf::random(n, stages, &mut rng);
        let cs: Vec<Challenge> = (0..count)
            .map(|_| Challenge::random(stages, &mut rng))
            .collect();
        let fm = FeatureMatrix::from_challenges(&cs).unwrap();
        (xor, cs, fm)
    }

    #[test]
    fn matrix_rows_match_feature_vectors() {
        let (_, cs, fm) = random_batch(1, 1, 32, 40);
        assert_eq!(fm.len(), 40);
        assert_eq!(fm.width(), 33);
        assert_eq!(fm.stages(), 32);
        // One reused row buffer — `row_into` materialises without the
        // per-row `Vec` the old `row()` loop paid for.
        let mut row = vec![0.0f64; fm.width()];
        for (i, c) in cs.iter().enumerate() {
            fm.row_into(i, &mut row);
            assert_eq!(row, c.features().as_slice(), "row {i}");
        }
        assert_eq!(fm.row(7), cs[7].features().as_slice(), "row() delegates");
        assert_eq!(fm.challenges(), &cs[..]);
    }

    #[test]
    fn matrix_constructors_validate() {
        assert!(matches!(
            FeatureMatrix::from_challenges(&[]),
            Err(PufError::InvalidParameter { .. })
        ));
        assert!(matches!(
            FeatureMatrix::new(0, &[]),
            Err(PufError::InvalidStageCount { .. })
        ));
        assert!(matches!(
            FeatureMatrix::new(8, &[Challenge::zero(16)]),
            Err(PufError::StageMismatch { .. })
        ));
        let empty = FeatureMatrix::new(8, &[]).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.stages(), 8);
    }

    #[test]
    fn kernel_handles_all_remainder_sizes() {
        // 0..=9 rows covers empty, sub-quad and quad+remainder shapes.
        let mut rng = StdRng::seed_from_u64(2);
        let puf = ArbiterPuf::random(13, &mut rng);
        for count in 0..=9 {
            let cs: Vec<Challenge> = (0..count)
                .map(|_| Challenge::random(13, &mut rng))
                .collect();
            let fm = FeatureMatrix::new(13, &cs).unwrap();
            let batch = puf.delta_batch(&fm);
            for (c, &d) in cs.iter().zip(&batch) {
                assert_eq!(d.to_bits(), puf.delay_difference(c).to_bits());
            }
        }
    }

    #[test]
    fn batch_spans_multiple_blocks() {
        // More rows than BLOCK_ROWS exercises the blocked walk.
        let (xor, cs, fm) = random_batch(3, 3, 16, BLOCK_ROWS + 17);
        let batch = xor.response_batch(&fm);
        let soft = xor.soft_response_batch(&fm, 0.05);
        for (i, c) in cs.iter().enumerate() {
            assert_eq!(batch[i], xor.response(c), "row {i}");
            assert_eq!(
                soft[i].to_bits(),
                xor.soft_response(c, 0.05).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn xor_delta_batch_is_member_major() {
        let (xor, cs, fm) = random_batch(4, 5, 24, 33);
        let deltas = xor.delta_batch(&fm);
        assert_eq!(deltas.len(), 5 * 33);
        for (i, c) in cs.iter().enumerate() {
            let scalar = xor.member_deltas(c);
            for (m, &want) in scalar.iter().enumerate() {
                assert_eq!(deltas[m * 33 + i].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn noisy_batch_matches_scalar_loop_and_is_deterministic() {
        let (xor, cs, fm) = random_batch(5, 4, 32, 257);
        let sigma = 0.08;
        let batch_a = xor.eval_noisy_batch(&fm, sigma, &mut StdRng::seed_from_u64(99));
        let batch_b = xor.eval_noisy_batch(&fm, sigma, &mut StdRng::seed_from_u64(99));
        assert_eq!(batch_a, batch_b, "same seed must reproduce the batch");
        let mut rng = StdRng::seed_from_u64(99);
        let scalar: Vec<bool> = cs
            .iter()
            .map(|c| xor.eval_noisy(c, sigma, &mut rng))
            .collect();
        assert_eq!(batch_a, scalar, "batch must replay the scalar noise stream");
    }

    #[test]
    #[should_panic(expected = "stage count does not match")]
    fn stage_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let puf = ArbiterPuf::random(16, &mut rng);
        let fm = FeatureMatrix::new(8, &[Challenge::zero(8)]).unwrap();
        let _ = puf.delta_batch(&fm);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_arbiter_delta_batch_bit_exact(
            seed in any::<u64>(),
            stages in 1usize..=128,
            count in 1usize..=48,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let puf = ArbiterPuf::random(stages, &mut rng);
            let cs: Vec<Challenge> = (0..count)
                .map(|_| Challenge::random(stages, &mut rng))
                .collect();
            let fm = FeatureMatrix::from_challenges(&cs).unwrap();
            let deltas = puf.delta_batch(&fm);
            let responses = puf.response_batch(&fm);
            let soft = puf.soft_response_batch(&fm, 0.0575);
            for (i, c) in cs.iter().enumerate() {
                prop_assert_eq!(deltas[i].to_bits(), puf.delay_difference(c).to_bits());
                prop_assert_eq!(responses[i], puf.response(c));
                prop_assert_eq!(soft[i].to_bits(), puf.soft_response(c, 0.0575).to_bits());
            }
        }

        #[test]
        fn prop_xor_batch_bit_exact(
            seed in any::<u64>(),
            n in 1usize..=10,
            stages in 1usize..=128,
            count in 1usize..=32,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xor = XorPuf::random(n, stages, &mut rng);
            let cs: Vec<Challenge> = (0..count)
                .map(|_| Challenge::random(stages, &mut rng))
                .collect();
            let fm = FeatureMatrix::from_challenges(&cs).unwrap();
            let responses = xor.response_batch(&fm);
            let soft = xor.soft_response_batch(&fm, 0.05);
            let hard = xor.soft_response_batch(&fm, 0.0);
            for (i, c) in cs.iter().enumerate() {
                prop_assert_eq!(responses[i], xor.response(c));
                prop_assert_eq!(soft[i].to_bits(), xor.soft_response(c, 0.05).to_bits());
                prop_assert_eq!(hard[i].to_bits(), xor.soft_response(c, 0.0).to_bits());
            }
        }

        #[test]
        fn prop_noisy_batch_replays_scalar_stream(
            seed in any::<u64>(),
            n in 1usize..=10,
            count in 1usize..=32,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xor = XorPuf::random(n, 32, &mut rng);
            let cs: Vec<Challenge> = (0..count)
                .map(|_| Challenge::random(32, &mut rng))
                .collect();
            let fm = FeatureMatrix::from_challenges(&cs).unwrap();
            let batch = xor.eval_noisy_batch(&fm, 0.06, &mut StdRng::seed_from_u64(seed ^ 0xB00C));
            let mut scalar_rng = StdRng::seed_from_u64(seed ^ 0xB00C);
            let scalar: Vec<bool> = cs
                .iter()
                .map(|c| xor.eval_noisy(c, 0.06, &mut scalar_rng))
                .collect();
            prop_assert_eq!(batch, scalar);
        }
    }
}
