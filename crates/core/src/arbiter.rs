//! The linear additive delay model of a single MUX arbiter PUF.

use crate::challenge::{Challenge, FeatureVector};
use crate::math::normal_cdf;
use crate::rngx;
use crate::{PufError, MAX_STAGES};
use rand::Rng;

/// A `k`-stage MUX arbiter PUF under the linear additive delay model.
///
/// The PUF is fully described by its weight vector `w ∈ ℝ^{k+1}`: entry `i`
/// is the accumulated delay-difference contribution of stage `i` and the
/// last entry is the arbiter/bias offset. For a challenge `c` the delay
/// difference between the two racing signal paths is `Δ(c) = w · φ(c)`
/// (see [`Challenge::features`]); the arbiter outputs `1` iff the top path
/// wins, i.e. iff `Δ(c) + ε > 0` for thermal noise `ε`.
///
/// [`ArbiterPuf::random`] draws weights i.i.d. `N(0, 1/(k+1))`, normalising
/// the challenge-population delay difference to `Δ ~ N(0, 1)`; every σ in
/// this workspace (noise, V/T sensitivity, thresholds) is expressed in these
/// normalised delay units.
///
/// ```
/// use puf_core::{ArbiterPuf, Challenge};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let puf = ArbiterPuf::random(32, &mut rng);
/// let c = Challenge::random(32, &mut rng);
/// // Noiseless responses are deterministic.
/// assert_eq!(puf.response(&c), puf.response(&c));
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ArbiterPuf {
    weights: Vec<f64>,
}

impl ArbiterPuf {
    /// Creates a PUF from an explicit weight vector of length `stages + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::InvalidStageCount`] if the implied stage count is
    /// 0 or exceeds [`MAX_STAGES`], and [`PufError::InvalidParameter`] if
    /// any weight is non-finite.
    pub fn from_weights(weights: Vec<f64>) -> Result<Self, PufError> {
        let stages = weights.len().saturating_sub(1);
        if stages == 0 || stages > MAX_STAGES {
            return Err(PufError::InvalidStageCount { stages });
        }
        if weights.iter().any(|w| !w.is_finite()) {
            return Err(PufError::InvalidParameter {
                name: "weights",
                constraint: "all weights must be finite",
            });
        }
        Ok(Self { weights })
    }

    /// Draws a PUF with process variation `wᵢ ~ N(0, 1/(stages+1))`.
    ///
    /// This normalisation makes the delay difference over random challenges
    /// approximately standard normal, so noise σ and threshold values are
    /// comparable across stage counts.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is 0 or exceeds [`MAX_STAGES`].
    pub fn random<R: Rng + ?Sized>(stages: usize, rng: &mut R) -> Self {
        assert!(
            (1..=MAX_STAGES).contains(&stages),
            "stages must be 1..={MAX_STAGES}, got {stages}"
        );
        let sigma = (1.0 / (stages as f64 + 1.0)).sqrt();
        let mut weights = vec![0.0; stages + 1];
        rngx::fill_normal(rng, sigma, &mut weights);
        Self { weights }
    }

    /// Number of delay stages.
    pub fn stages(&self) -> usize {
        self.weights.len() - 1
    }

    /// The weight vector (length `stages + 1`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Euclidean norm of the weight vector — the standard deviation of the
    /// delay difference over uniformly random challenges.
    pub fn weight_norm(&self) -> f64 {
        self.weights.iter().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Delay difference `Δ(c) = w · φ(c)`.
    ///
    /// # Panics
    ///
    /// Panics if the challenge stage count differs from the PUF's; use
    /// [`ArbiterPuf::try_delay_difference`] for a fallible variant.
    pub fn delay_difference(&self, challenge: &Challenge) -> f64 {
        self.try_delay_difference(challenge)
            // puf-lint: allow(L4): documented panicking variant; try_delay_difference is the fallible API
            .expect("challenge/PUF stage mismatch")
    }

    /// Fallible variant of [`ArbiterPuf::delay_difference`].
    ///
    /// # Errors
    ///
    /// Returns [`PufError::StageMismatch`] if the challenge stage count
    /// differs from the PUF's.
    pub fn try_delay_difference(&self, challenge: &Challenge) -> Result<f64, PufError> {
        if challenge.stages() != self.stages() {
            return Err(PufError::StageMismatch {
                expected: self.stages(),
                actual: challenge.stages(),
            });
        }
        Ok(self.delay_difference_from_features(&challenge.features()))
    }

    /// Delay difference from a pre-computed feature vector. Useful in hot
    /// loops where the same `φ(c)` is applied to many PUFs (an XOR bank).
    ///
    /// # Panics
    ///
    /// Panics if the feature length differs from `stages + 1`.
    pub fn delay_difference_from_features(&self, features: &FeatureVector) -> f64 {
        features.dot(&self.weights)
    }

    /// Noiseless (infinite-margin) response: `Δ(c) > 0`.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response(&self, challenge: &Challenge) -> bool {
        self.delay_difference(challenge) > 0.0
    }

    /// One noisy evaluation: `Δ(c) + ε > 0` with `ε ~ N(0, sigma_noise²)`.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or a negative/non-finite `sigma_noise`.
    pub fn eval_noisy<R: Rng + ?Sized>(
        &self,
        challenge: &Challenge,
        sigma_noise: f64,
        rng: &mut R,
    ) -> bool {
        self.delay_difference(challenge) + rngx::normal(rng, 0.0, sigma_noise) > 0.0
    }

    /// Analytic soft response `Pr(response = 1) = Φ(Δ(c)/σ)`.
    ///
    /// With `sigma_noise == 0` this degenerates to the noiseless hard
    /// response (0.0 or 1.0).
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or a negative/non-finite `sigma_noise`.
    pub fn soft_response(&self, challenge: &Challenge, sigma_noise: f64) -> f64 {
        assert!(
            sigma_noise >= 0.0 && sigma_noise.is_finite(),
            "sigma_noise must be finite and non-negative"
        );
        let delta = self.delay_difference(challenge);
        if sigma_noise == 0.0 {
            return if delta > 0.0 { 1.0 } else { 0.0 };
        }
        normal_cdf(delta / sigma_noise)
    }

    /// Returns a copy of this PUF with every weight transformed by `f`,
    /// used by the environment model to derive condition-specific weights.
    pub fn map_weights<F: FnMut(usize, f64) -> f64>(&self, mut f: F) -> Self {
        let weights = self
            .weights
            .iter()
            .enumerate()
            .map(|(i, &w)| f(i, w))
            .collect();
        Self { weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixed_puf() -> ArbiterPuf {
        ArbiterPuf::from_weights(vec![0.5, -0.25, 1.0]).unwrap()
    }

    #[test]
    fn from_weights_validation() {
        assert!(matches!(
            ArbiterPuf::from_weights(vec![1.0]),
            Err(PufError::InvalidStageCount { .. })
        ));
        assert!(matches!(
            ArbiterPuf::from_weights(vec![1.0, f64::NAN]),
            Err(PufError::InvalidParameter { .. })
        ));
        assert!(ArbiterPuf::from_weights(vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn delay_difference_hand_computed() {
        // stages = 2, weights = [0.5, -0.25, 1.0].
        // Challenge bits 00: φ = [1, 1, 1]   → Δ = 1.25
        // Challenge bits 10: φ = [-1, -1, 1] → Δ = 0.75
        // Challenge bits 01: φ = [-1, 1, 1]  → Δ = 0.25
        let puf = fixed_puf();
        let cases = [(0b00u128, 1.25), (0b10, 0.75), (0b01, 0.25)];
        for (bits, want) in cases {
            let c = Challenge::from_bits(bits, 2).unwrap();
            assert!(
                (puf.delay_difference(&c) - want).abs() < 1e-12,
                "bits {bits:b}"
            );
        }
    }

    #[test]
    fn stage_mismatch_is_reported() {
        let puf = fixed_puf();
        let c = Challenge::zero(3);
        assert_eq!(
            puf.try_delay_difference(&c),
            Err(PufError::StageMismatch {
                expected: 2,
                actual: 3
            })
        );
    }

    #[test]
    fn soft_response_limits() {
        let puf = fixed_puf();
        let c = Challenge::zero(2); // Δ = 1.25 > 0
        assert_eq!(puf.soft_response(&c, 0.0), 1.0);
        assert!((puf.soft_response(&c, 1e-6) - 1.0).abs() < 1e-12);
        assert!((puf.soft_response(&c, 1e9) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn random_puf_delta_is_roughly_standard_normal() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut norms = Vec::new();
        for _ in 0..200 {
            norms.push(ArbiterPuf::random(32, &mut rng).weight_norm());
        }
        let mean_norm = crate::math::mean(&norms);
        // E[||w||] for 33 dims with variance 1/33 is just under 1.
        assert!(
            (mean_norm - 1.0).abs() < 0.1,
            "mean weight norm {mean_norm}"
        );
    }

    #[test]
    fn noisy_eval_flip_rate_matches_soft_response() {
        let mut rng = StdRng::seed_from_u64(6);
        let puf = ArbiterPuf::from_weights(vec![0.0, 0.05]).unwrap();
        let c = Challenge::zero(1); // Δ = 0.05
        let sigma = 0.1;
        let p_analytic = puf.soft_response(&c, sigma);
        let n = 50_000;
        let ones = (0..n)
            .filter(|_| puf.eval_noisy(&c, sigma, &mut rng))
            .count() as f64;
        let p_emp = ones / n as f64;
        assert!(
            (p_emp - p_analytic).abs() < 0.01,
            "empirical {p_emp} vs analytic {p_analytic}"
        );
    }

    #[test]
    fn map_weights_applies_transform() {
        let puf = fixed_puf();
        let doubled = puf.map_weights(|_, w| 2.0 * w);
        assert_eq!(doubled.weights(), &[1.0, -0.5, 2.0]);
    }

    proptest! {
        #[test]
        fn prop_response_is_sign_of_delta(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let puf = ArbiterPuf::random(32, &mut rng);
            let c = Challenge::random(32, &mut rng);
            prop_assert_eq!(puf.response(&c), puf.delay_difference(&c) > 0.0);
        }

        #[test]
        fn prop_soft_response_monotone_in_delta(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let puf = ArbiterPuf::random(16, &mut rng);
            let c1 = Challenge::random(16, &mut rng);
            let c2 = Challenge::random(16, &mut rng);
            let (d1, d2) = (puf.delay_difference(&c1), puf.delay_difference(&c2));
            let (s1, s2) = (puf.soft_response(&c1, 0.05), puf.soft_response(&c2, 0.05));
            if d1 < d2 {
                prop_assert!(s1 <= s2);
            } else if d1 > d2 {
                prop_assert!(s1 >= s2);
            }
        }

        #[test]
        fn prop_features_path_equals_challenge_path(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let puf = ArbiterPuf::random(24, &mut rng);
            let c = Challenge::random(24, &mut rng);
            let via_features = puf.delay_difference_from_features(&c.features());
            prop_assert!((puf.delay_difference(&c) - via_features).abs() < 1e-12);
        }
    }
}
