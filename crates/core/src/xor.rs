//! XOR arbiter PUFs: `n` parallel arbiter PUFs sharing one challenge, their
//! output bits XOR-ed into the final response (paper Fig. 1, Ref. 8).

use crate::arbiter::ArbiterPuf;
use crate::challenge::Challenge;
use crate::rngx;
use crate::PufError;
use rand::Rng;

/// An `n`-input XOR arbiter PUF.
///
/// All member PUFs receive the same challenge; only the XOR of their
/// response bits is visible at the output (the individual responses are the
/// quantity the paper's fuse-protected enrollment port exposes one time).
///
/// ```
/// use puf_core::{Challenge, XorPuf};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let xor = XorPuf::random(10, 32, &mut rng);
/// assert_eq!(xor.n(), 10);
/// let c = Challenge::random(32, &mut rng);
/// let member_bits: Vec<bool> = xor.members().iter().map(|p| p.response(&c)).collect();
/// let expect = member_bits.iter().fold(false, |acc, &b| acc ^ b);
/// assert_eq!(xor.response(&c), expect);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct XorPuf {
    members: Vec<ArbiterPuf>,
}

impl XorPuf {
    /// Builds an XOR PUF from existing member PUFs.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::EmptyXor`] for an empty member list and
    /// [`PufError::StageMismatch`] if the members disagree on stage count.
    pub fn from_members(members: Vec<ArbiterPuf>) -> Result<Self, PufError> {
        let first = members.first().ok_or(PufError::EmptyXor)?;
        let stages = first.stages();
        for m in &members {
            if m.stages() != stages {
                return Err(PufError::StageMismatch {
                    expected: stages,
                    actual: m.stages(),
                });
            }
        }
        Ok(Self { members })
    }

    /// Draws `n` independent random member PUFs (see [`ArbiterPuf::random`]).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `stages` is out of range.
    pub fn random<R: Rng + ?Sized>(n: usize, stages: usize, rng: &mut R) -> Self {
        assert!(n >= 1, "an XOR PUF needs at least one member");
        let members = (0..n).map(|_| ArbiterPuf::random(stages, rng)).collect();
        Self { members }
    }

    /// Number of member PUFs (`n` in the paper's notation).
    pub fn n(&self) -> usize {
        self.members.len()
    }

    /// Number of delay stages of each member.
    pub fn stages(&self) -> usize {
        self.members[0].stages()
    }

    /// The member PUFs, in XOR order.
    pub fn members(&self) -> &[ArbiterPuf] {
        &self.members
    }

    /// A sub-XOR-PUF over the first `n` members.
    ///
    /// The paper evaluates n = 1..10 on the same bank of physical PUFs; this
    /// accessor lets a fig harness do the same without re-sampling silicon.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`XorPuf::n`].
    pub fn prefix(&self, n: usize) -> XorPuf {
        assert!(n >= 1 && n <= self.n(), "prefix size {n} out of range");
        XorPuf {
            members: self.members[..n].to_vec(),
        }
    }

    /// Noiseless XOR response.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response(&self, challenge: &Challenge) -> bool {
        puf_telemetry::counter!("core.eval.count").inc();
        let features = challenge.features();
        self.members.iter().fold(false, |acc, m| {
            acc ^ (m.delay_difference_from_features(&features) > 0.0)
        })
    }

    /// Noiseless XOR responses for a whole challenge batch.
    ///
    /// Bit-identical to mapping [`XorPuf::response`], but runs through the
    /// [`crate::batch`] engine: one contiguous feature matrix, the unrolled
    /// dot kernel, per-batch latency telemetry (`core.eval.batch` histogram,
    /// `core.eval.count` counter) instead of per-bit overhead.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn responses(&self, challenges: &[Challenge]) -> Vec<bool> {
        let _span = puf_telemetry::span!("core.eval.batch");
        puf_telemetry::counter!("core.eval.count").add(challenges.len() as u64);
        if challenges.is_empty() {
            return Vec::new();
        }
        let features = crate::batch::FeatureMatrix::new(self.stages(), challenges)
            // puf-lint: allow(L4): documented panic contract of the batch entry point
            .expect("challenge stage count does not match the PUF");
        self.response_batch(&features)
    }

    /// One noisy evaluation: each member gets an independent noise draw,
    /// then the bits are XOR-ed.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or invalid `sigma_noise`.
    pub fn eval_noisy<R: Rng + ?Sized>(
        &self,
        challenge: &Challenge,
        sigma_noise: f64,
        rng: &mut R,
    ) -> bool {
        let features = challenge.features();
        self.members.iter().fold(false, |acc, m| {
            let delta = m.delay_difference_from_features(&features);
            acc ^ (delta + rngx::normal(rng, 0.0, sigma_noise) > 0.0)
        })
    }

    /// Analytic soft response of the XOR output.
    ///
    /// If member `i` outputs `1` with probability `pᵢ` (independently), the
    /// XOR is `1` with probability `(1 − Π(1 − 2pᵢ)) / 2` — the standard
    /// piling-up identity.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or invalid `sigma_noise`.
    pub fn soft_response(&self, challenge: &Challenge, sigma_noise: f64) -> f64 {
        let features = challenge.features();
        let mut prod = 1.0;
        for m in &self.members {
            let delta = m.delay_difference_from_features(&features);
            let p = if sigma_noise == 0.0 {
                if delta > 0.0 {
                    1.0
                } else {
                    0.0
                }
            } else {
                crate::math::normal_cdf(delta / sigma_noise)
            };
            prod *= 1.0 - 2.0 * p;
        }
        (1.0 - prod) / 2.0
    }

    /// Per-member delay differences for a challenge, in member order.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn member_deltas(&self, challenge: &Challenge) -> Vec<f64> {
        let features = challenge.features();
        self.members
            .iter()
            .map(|m| m.delay_difference_from_features(&features))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_members_validation() {
        assert_eq!(XorPuf::from_members(vec![]), Err(PufError::EmptyXor));
        let a = ArbiterPuf::from_weights(vec![1.0, 2.0]).unwrap();
        let b = ArbiterPuf::from_weights(vec![1.0, 2.0, 3.0]).unwrap();
        assert!(matches!(
            XorPuf::from_members(vec![a.clone(), b]),
            Err(PufError::StageMismatch { .. })
        ));
        assert!(XorPuf::from_members(vec![a.clone(), a]).is_ok());
    }

    #[test]
    fn single_member_xor_equals_member() {
        let mut rng = StdRng::seed_from_u64(1);
        let member = ArbiterPuf::random(32, &mut rng);
        let xor = XorPuf::from_members(vec![member.clone()]).unwrap();
        for _ in 0..50 {
            let c = Challenge::random(32, &mut rng);
            assert_eq!(xor.response(&c), member.response(&c));
        }
    }

    #[test]
    fn prefix_shares_members() {
        let mut rng = StdRng::seed_from_u64(2);
        let xor = XorPuf::random(8, 16, &mut rng);
        let p3 = xor.prefix(3);
        assert_eq!(p3.n(), 3);
        assert_eq!(p3.members(), &xor.members()[..3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn prefix_rejects_oversize() {
        let mut rng = StdRng::seed_from_u64(2);
        XorPuf::random(2, 16, &mut rng).prefix(3);
    }

    #[test]
    fn batch_responses_match_single_eval() {
        let mut rng = StdRng::seed_from_u64(9);
        let xor = XorPuf::random(4, 16, &mut rng);
        let cs: Vec<Challenge> = (0..20).map(|_| Challenge::random(16, &mut rng)).collect();
        let batch = xor.responses(&cs);
        assert_eq!(batch.len(), cs.len());
        for (c, &b) in cs.iter().zip(&batch) {
            assert_eq!(b, xor.response(c));
        }
    }

    #[test]
    fn soft_response_piling_up_two_members() {
        // Two members with known deltas; check against direct enumeration.
        let a = ArbiterPuf::from_weights(vec![0.0, 0.1]).unwrap();
        let b = ArbiterPuf::from_weights(vec![0.0, -0.05]).unwrap();
        let xor = XorPuf::from_members(vec![a.clone(), b.clone()]).unwrap();
        let c = Challenge::zero(1);
        let sigma = 0.1;
        let pa = a.soft_response(&c, sigma);
        let pb = b.soft_response(&c, sigma);
        let want = pa * (1.0 - pb) + pb * (1.0 - pa);
        assert!((xor.soft_response(&c, sigma) - want).abs() < 1e-12);
    }

    #[test]
    fn noisy_xor_matches_analytic_soft_response() {
        let mut rng = StdRng::seed_from_u64(8);
        let xor = XorPuf::random(3, 8, &mut rng);
        let c = Challenge::random(8, &mut rng);
        let sigma = 0.5;
        let p = xor.soft_response(&c, sigma);
        let n = 40_000;
        let ones = (0..n)
            .filter(|_| xor.eval_noisy(&c, sigma, &mut rng))
            .count() as f64;
        assert!(
            (ones / n as f64 - p).abs() < 0.015,
            "empirical {} vs analytic {p}",
            ones / n as f64
        );
    }

    proptest! {
        #[test]
        fn prop_xor_response_is_fold_of_members(seed in any::<u64>(), n in 1usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xor = XorPuf::random(n, 16, &mut rng);
            let c = Challenge::random(16, &mut rng);
            let folded = xor
                .members()
                .iter()
                .fold(false, |acc, m| acc ^ m.response(&c));
            prop_assert_eq!(xor.response(&c), folded);
        }

        #[test]
        fn prop_soft_response_in_unit_interval(seed in any::<u64>(), n in 1usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xor = XorPuf::random(n, 16, &mut rng);
            let c = Challenge::random(16, &mut rng);
            let p = xor.soft_response(&c, 0.05);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_member_deltas_len(seed in any::<u64>(), n in 1usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let xor = XorPuf::random(n, 16, &mut rng);
            let c = Challenge::random(16, &mut rng);
            prop_assert_eq!(xor.member_deltas(&c).len(), n);
        }
    }
}
