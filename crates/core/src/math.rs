//! Special functions the standard library lacks: error function, standard
//! normal CDF and its inverse, plus small statistics helpers.
//!
//! The soft response of an arbiter PUF is `Φ(Δ/σ)` and the enrollment
//! thresholding logic of the paper works directly on these probabilities, so
//! accurate and fast `Φ`/`Φ⁻¹` are load-bearing for the whole reproduction.

/// Machine-precision-ish error function, |relative error| < 1.2e-7.
///
/// Uses the rational Chebyshev approximation of `erfc` from Numerical
/// Recipes (Press et al.), which is accurate over the full real line and
/// avoids the catastrophic cancellation of naive series for large `x`.
///
/// ```
/// use puf_core::math::erf;
/// assert!((erf(0.0)).abs() < 1e-7);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-6);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function, `erfc(x) = 1 - erf(x)`.
///
/// |relative error| < 1.2e-7 everywhere; asymptotically exact in the tails,
/// which matters because stable-CRP classification lives in the far tail
/// (soft responses within `1/N` of 0 or 1 with `N = 100_000`).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Chebyshev fit of erfc(z) * exp(z^2 + 1.26551223 - ...) from
    // Numerical Recipes in C, 2nd ed., §6.2.
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use puf_core::math::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
/// assert!((normal_cdf(1.959963984540054) - 0.975).abs() < 1e-7);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * std::f64::consts::FRAC_1_SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// Inverse of the standard normal CDF (the probit function), via Peter
/// Acklam's rational approximation refined with one Halley step against
/// [`normal_cdf`].
///
/// Consistent with [`normal_cdf`] to better than 1e-9 (so round trips are
/// exact for practical purposes); absolute accuracy against the true probit
/// is bounded by the ~1.2e-7 accuracy of the underlying [`erfc`].
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// ```
/// use puf_core::math::normal_quantile;
/// assert!((normal_quantile(0.975) - 1.959963984540054).abs() < 1e-6);
/// assert!((normal_quantile(0.5)).abs() < 1e-6);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal_quantile requires p in (0,1), got {p}"
    );
    // Coefficients for Acklam's approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method against the high-accuracy CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Exact binomial CDF `P(X ≤ k)` for `X ~ Binomial(n, p)`, by summing the
/// pmf recurrence. Intended for protocol-sized `n` (≤ a few thousand).
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// ```
/// use puf_core::math::binomial_cdf;
/// assert!((binomial_cdf(1, 2, 0.5) - 0.75).abs() < 1e-12);
/// assert_eq!(binomial_cdf(2, 2, 0.5), 1.0);
/// ```
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    if k >= n {
        return 1.0;
    }
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return 0.0; // k < n here
    }
    let q = 1.0 - p;
    // pmf(0) in log space to survive large n.
    let mut log_pmf = n as f64 * q.ln();
    let mut cdf = log_pmf.exp();
    let ratio = p / q;
    for i in 0..k {
        log_pmf += ((n - i) as f64 / (i + 1) as f64).ln() + ratio.ln();
        cdf += log_pmf.exp();
    }
    cdf.min(1.0)
}

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance (`n - 1` denominator). Returns `NaN` for fewer
/// than two samples.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return f64::NAN;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Sample standard deviation; see [`variance`].
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Pearson correlation coefficient of two equal-length slices.
///
/// Returns `NaN` when either slice has zero variance or lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return f64::NAN;
    }
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return f64::NAN;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference values from tables / scipy.
    const ERF_TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.1124629160182849),
        (0.5, 0.5204998778130465),
        (1.0, 0.8427007929497149),
        (1.5, 0.9661051464753107),
        (2.0, 0.9953222650189527),
        (3.0, 0.9999779095030014),
    ];

    #[test]
    fn erf_matches_reference_values() {
        for &(x, want) in ERF_TABLE {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x}) = {} want {want}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 2e-7, "erf is odd at {x}");
        }
    }

    #[test]
    fn erfc_tail_is_positive_and_decreasing() {
        let mut prev = erfc(3.0);
        for i in 4..12 {
            let v = erfc(i as f64);
            assert!(v > 0.0, "erfc({i}) underflowed to {v}");
            assert!(v < prev, "erfc not decreasing at {i}");
            prev = v;
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        for x in [-3.5, -1.0, -0.3, 0.0, 0.7, 2.2] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn normal_cdf_known_points() {
        assert!((normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-7);
        assert!((normal_cdf(-2.0) - 0.022750131948179195).abs() < 1e-7);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [1e-6, 1e-3, 0.02, 0.25, 0.5, 0.77, 0.999, 1.0 - 1e-6] {
            let x = normal_quantile(p);
            assert!(
                (normal_cdf(x) - p).abs() < 1e-8,
                "round trip failed at p={p}: x={x}, cdf={}",
                normal_cdf(x)
            );
        }
    }

    #[test]
    #[should_panic(expected = "normal_quantile")]
    fn quantile_rejects_zero() {
        normal_quantile(0.0);
    }

    #[test]
    fn pdf_integrates_to_cdf_increment() {
        // Trapezoidal integral of the pdf over [0, 1] ≈ Φ(1) − Φ(0).
        let n = 10_000;
        let mut acc = 0.0;
        for i in 0..n {
            let x0 = i as f64 / n as f64;
            let x1 = (i + 1) as f64 / n as f64;
            acc += 0.5 * (normal_pdf(x0) + normal_pdf(x1)) * (x1 - x0);
        }
        assert!((acc - (normal_cdf(1.0) - 0.5)).abs() < 1e-8);
    }

    #[test]
    fn binomial_cdf_hand_checked() {
        // Binomial(3, 0.5): pmf = 1/8, 3/8, 3/8, 1/8.
        assert!((binomial_cdf(0, 3, 0.5) - 0.125).abs() < 1e-12);
        assert!((binomial_cdf(1, 3, 0.5) - 0.5).abs() < 1e-12);
        assert!((binomial_cdf(2, 3, 0.5) - 0.875).abs() < 1e-12);
        assert_eq!(binomial_cdf(3, 3, 0.5), 1.0);
        assert_eq!(binomial_cdf(5, 3, 0.5), 1.0);
        assert_eq!(binomial_cdf(0, 10, 1.0), 0.0);
        assert_eq!(binomial_cdf(0, 10, 0.0), 1.0);
    }

    #[test]
    fn binomial_cdf_large_n_stays_normalised() {
        let c = binomial_cdf(500, 1_000, 0.5);
        assert!((c - 0.5126).abs() < 1e-3, "median region: {c}");
        assert!((binomial_cdf(999, 1_000, 0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_helpers() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
        assert!(pearson(&a, &[1.0, 1.0, 1.0, 1.0]).is_nan());
    }
}
