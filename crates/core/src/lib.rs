//! # puf-core
//!
//! Linear additive delay model of MUX (multiplexer) arbiter PUFs and XOR
//! arbiter PUFs, with arbiter thermal noise and voltage/temperature
//! variation.
//!
//! This crate is the silicon-free substrate for reproducing Zhou, Parhi and
//! Kim, *"Secure and Reliable XOR Arbiter PUF Design: An Experimental Study
//! based on 1 Trillion Challenge Response Pair Measurements"*, DAC 2017.
//! The paper measured custom 32 nm chips; here the same statistics are
//! produced by the community-standard linear additive delay model that the
//! paper itself uses for enrollment modeling (its §4).
//!
//! ## Model
//!
//! A `k`-stage arbiter PUF is parameterised by a weight vector
//! `w ∈ ℝ^{k+1}`. For a challenge `c ∈ {0,1}^k` the delay difference between
//! the two racing paths is the inner product
//!
//! ```text
//! Δ(c) = w · φ(c),     φ_i(c) = Π_{j=i}^{k-1} (1 − 2 c_j),  φ_k(c) = 1
//! ```
//!
//! A single noisy evaluation returns `1` iff `Δ(c) + ε > 0` with
//! `ε ~ N(0, σ_noise²)` drawn independently per evaluation (arbiter thermal
//! noise). The *soft response* — the probability of reading `1` — is
//! therefore `Φ(Δ(c)/σ_noise)` where `Φ` is the standard normal CDF.
//!
//! An `n`-input XOR PUF evaluates `n` arbiter PUFs on the same challenge and
//! XORs the bits.
//!
//! ## Quick example
//!
//! ```
//! use puf_core::{ArbiterPuf, Challenge, XorPuf};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let puf = XorPuf::random(4, 32, &mut rng);
//! let challenge = Challenge::random(32, &mut rng);
//! let bit = puf.response(&challenge);
//! assert_eq!(bit, puf.response(&challenge)); // noiseless responses repeat
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aging;
pub mod arbiter;
pub mod batch;
// The bit-sliced SIMD kernels are the only `unsafe` in this crate: explicit
// `std::arch` intrinsic lanes behind runtime feature detection, every site
// SAFETY-commented (lint rule L2 allowlists exactly this declaration, and
// L1 enforces the comments).
#[allow(unsafe_code)]
pub mod bitslice;
pub mod challenge;
pub mod env;
pub mod feedforward;
pub mod interpose;
pub mod math;
pub mod noise;
pub mod rngx;
pub mod xor;

pub use aging::{AgingModel, DriftVector};
pub use arbiter::ArbiterPuf;
pub use batch::FeatureMatrix;
pub use challenge::{Challenge, FeatureVector};
pub use env::{Condition, Environment, Sensitivity};
pub use feedforward::FeedForwardPuf;
pub use interpose::InterposePuf;
pub use noise::{calibrate_noise_sigma, stable_fraction, NoiseModel, NOMINAL_EVALUATIONS};
pub use xor::XorPuf;

use std::error::Error as StdError;
use std::fmt;

/// Errors produced by `puf-core` constructors and evaluators.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PufError {
    /// A challenge was applied to a PUF with a different number of stages.
    StageMismatch {
        /// Number of stages the PUF expects.
        expected: usize,
        /// Number of stages the challenge carries.
        actual: usize,
    },
    /// A PUF or challenge was requested with an unsupported stage count.
    InvalidStageCount {
        /// The requested stage count.
        stages: usize,
    },
    /// An XOR PUF was requested with zero member PUFs.
    EmptyXor,
    /// A numeric parameter was out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for PufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PufError::StageMismatch { expected, actual } => write!(
                f,
                "challenge has {actual} stages but the PUF expects {expected}"
            ),
            PufError::InvalidStageCount { stages } => {
                write!(f, "unsupported stage count {stages} (must be 1..=128)")
            }
            PufError::EmptyXor => write!(f, "an XOR PUF needs at least one member PUF"),
            PufError::InvalidParameter { name, constraint } => {
                write!(f, "invalid parameter `{name}`: {constraint}")
            }
        }
    }
}

impl StdError for PufError {}

/// Maximum number of delay stages supported by [`Challenge`]'s fixed-width
/// bit storage.
pub const MAX_STAGES: usize = 128;

/// Number of delay stages in the paper's 32 nm test chips.
pub const PAPER_STAGES: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let err = PufError::StageMismatch {
            expected: 32,
            actual: 64,
        };
        let msg = err.to_string();
        assert!(msg.contains("32") && msg.contains("64"));
        assert!(!format!("{err:?}").is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PufError>();
    }
}
