//! Supply-voltage and temperature variation model.
//!
//! The paper measures its chips at a 3×3 grid of conditions
//! (0.8/0.9/1.0 V × 0/25/60 °C) and observes that (a) the soft-response
//! distribution widens away from the nominal corner, (b) unstable CRPs stay
//! concentrated around soft response 0.5, and (c) marginal CRPs that look
//! stable at nominal can flip at a corner. This module reproduces those
//! effects with a first-order sensitivity model:
//!
//! ```text
//! wᵢ(V, T) = wᵢ · s(V, T)  +  vᵢ · (V − V₀)  +  tᵢ · (T − T₀)
//! σ_noise(V, T) = σ₀ · (V₀/V)² · sqrt(T_K / T₀_K)
//! ```
//!
//! where `vᵢ, tᵢ` are per-stage random sensitivities drawn once per PUF
//! (mismatch in how each stage's delay responds to V/T) and `s(V, T)` is a
//! global delay scaling. The per-stage terms are what make marginal CRPs
//! flip — a pure global scaling would never change the sign of Δ.

use crate::arbiter::ArbiterPuf;
use crate::rngx;
use rand::Rng;
use std::fmt;

/// Nominal supply voltage of the paper's test chips (volts).
pub const NOMINAL_VDD: f64 = 0.9;
/// Nominal test temperature (°C).
pub const NOMINAL_TEMP_C: f64 = 25.0;

/// An operating condition: supply voltage and junction temperature.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Condition {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Temperature in degrees Celsius.
    pub temp_c: f64,
}

impl Condition {
    /// The nominal enrollment condition: 0.9 V, 25 °C.
    pub const NOMINAL: Condition = Condition {
        vdd: NOMINAL_VDD,
        temp_c: NOMINAL_TEMP_C,
    };

    /// Creates a condition.
    pub fn new(vdd: f64, temp_c: f64) -> Self {
        Self { vdd, temp_c }
    }

    /// The paper's full 3×3 measurement grid:
    /// {0.8, 0.9, 1.0} V × {0, 25, 60} °C.
    pub fn paper_grid() -> Vec<Condition> {
        let mut grid = Vec::with_capacity(9);
        for &vdd in &[0.8, 0.9, 1.0] {
            for &temp in &[0.0, 25.0, 60.0] {
                grid.push(Condition::new(vdd, temp));
            }
        }
        grid
    }

    /// Voltage offset from nominal.
    pub fn dv(&self) -> f64 {
        self.vdd - NOMINAL_VDD
    }

    /// Temperature offset from nominal.
    pub fn dt(&self) -> f64 {
        self.temp_c - NOMINAL_TEMP_C
    }

    /// Whether this is (numerically) the nominal corner.
    pub fn is_nominal(&self) -> bool {
        self.dv() == 0.0 && self.dt() == 0.0
    }
}

impl Default for Condition {
    fn default() -> Self {
        Self::NOMINAL
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}V/{:.0}°C", self.vdd, self.temp_c)
    }
}

/// Per-stage voltage and temperature sensitivities of one arbiter PUF.
///
/// Units: normalised delay difference per volt (`voltage`) and per °C
/// (`temperature`); see [`crate::ArbiterPuf`] for the normalisation.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Sensitivity {
    voltage: Vec<f64>,
    temperature: Vec<f64>,
}

impl Sensitivity {
    /// Draws random per-stage sensitivities for a PUF with `stages` stages.
    ///
    /// `sigma_v` / `sigma_t` are the per-stage standard deviations in delay
    /// units per volt / per °C.
    pub fn random<R: Rng + ?Sized>(stages: usize, sigma_v: f64, sigma_t: f64, rng: &mut R) -> Self {
        let mut voltage = vec![0.0; stages + 1];
        let mut temperature = vec![0.0; stages + 1];
        rngx::fill_normal(rng, sigma_v, &mut voltage);
        rngx::fill_normal(rng, sigma_t, &mut temperature);
        Self {
            voltage,
            temperature,
        }
    }

    /// A sensitivity of exactly zero everywhere (an idealised PUF whose
    /// behaviour is V/T-independent up to noise scaling).
    pub fn zero(stages: usize) -> Self {
        Self {
            voltage: vec![0.0; stages + 1],
            temperature: vec![0.0; stages + 1],
        }
    }

    /// Per-stage voltage sensitivities (length `stages + 1`).
    pub fn voltage(&self) -> &[f64] {
        &self.voltage
    }

    /// Per-stage temperature sensitivities (length `stages + 1`).
    pub fn temperature(&self) -> &[f64] {
        &self.temperature
    }
}

/// The environment model: global delay scaling, per-stage sensitivities and
/// condition-dependent noise.
///
/// Holds the *population parameters*; per-PUF sensitivity draws live next to
/// the PUF (see `puf_silicon::Chip`).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Environment {
    /// Per-stage voltage sensitivity σ (delay units per volt).
    pub sigma_v: f64,
    /// Per-stage temperature sensitivity σ (delay units per °C).
    pub sigma_t: f64,
    /// Exponent of the global delay scaling `(V₀/V)^delay_exp`.
    pub delay_exp: f64,
}

impl Environment {
    /// Default population parameters, calibrated (see `puf-bench` fig
    /// binaries and EXPERIMENTS.md) so that the predicted-stable fraction
    /// across the paper's V/T grid decays like the paper's Fig. 12.
    pub fn paper_default() -> Self {
        Self {
            sigma_v: 0.2,
            sigma_t: 0.0005,
            delay_exp: 1.3,
        }
    }

    /// An environment with no V/T dependence at all.
    pub fn ideal() -> Self {
        Self {
            sigma_v: 0.0,
            sigma_t: 0.0,
            delay_exp: 0.0,
        }
    }

    /// Global delay scale factor at a condition: delays grow at low voltage
    /// (`(V₀/V)^delay_exp`) and slightly with temperature.
    pub fn delay_scale(&self, cond: Condition) -> f64 {
        (NOMINAL_VDD / cond.vdd).powf(self.delay_exp) * (1.0 + 0.0005 * cond.dt())
    }

    /// Noise σ multiplier at a condition relative to nominal: thermal noise
    /// grows with absolute temperature and the arbiter's noise margin shrinks
    /// at low supply voltage.
    pub fn noise_scale(&self, cond: Condition) -> f64 {
        let t_kelvin = cond.temp_c + 273.15;
        let t0_kelvin = NOMINAL_TEMP_C + 273.15;
        (NOMINAL_VDD / cond.vdd).powi(2) * (t_kelvin / t0_kelvin).sqrt()
    }

    /// Derives the condition-specific weight vector of a PUF given its
    /// nominal weights and its per-stage sensitivities.
    ///
    /// # Panics
    ///
    /// Panics if the sensitivity length differs from the PUF's.
    pub fn puf_at(&self, puf: &ArbiterPuf, sens: &Sensitivity, cond: Condition) -> ArbiterPuf {
        assert_eq!(
            puf.weights().len(),
            sens.voltage.len(),
            "sensitivity/PUF length mismatch"
        );
        let scale = self.delay_scale(cond);
        let (dv, dt) = (cond.dv(), cond.dt());
        puf.map_weights(|i, w| w * scale + sens.voltage[i] * dv + sens.temperature[i] * dt)
    }
}

impl Default for Environment {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_grid_is_nine_conditions() {
        let grid = Condition::paper_grid();
        assert_eq!(grid.len(), 9);
        assert!(grid.contains(&Condition::NOMINAL));
        assert!(grid.contains(&Condition::new(0.8, 0.0)));
        assert!(grid.contains(&Condition::new(1.0, 60.0)));
    }

    #[test]
    fn nominal_condition_is_fixed_point() {
        let env = Environment::paper_default();
        assert!((env.delay_scale(Condition::NOMINAL) - 1.0).abs() < 1e-12);
        assert!((env.noise_scale(Condition::NOMINAL) - 1.0).abs() < 1e-12);

        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::random(32, &mut rng);
        let sens = Sensitivity::random(32, env.sigma_v, env.sigma_t, &mut rng);
        let at_nominal = env.puf_at(&puf, &sens, Condition::NOMINAL);
        for (a, b) in puf.weights().iter().zip(at_nominal.weights()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn low_voltage_increases_noise_and_delay() {
        let env = Environment::paper_default();
        let low = Condition::new(0.8, 25.0);
        assert!(env.noise_scale(low) > 1.0);
        assert!(env.delay_scale(low) > 1.0);
        let high = Condition::new(1.0, 25.0);
        assert!(env.noise_scale(high) < 1.0);
        assert!(env.delay_scale(high) < 1.0);
    }

    #[test]
    fn hot_condition_increases_noise() {
        let env = Environment::paper_default();
        assert!(env.noise_scale(Condition::new(0.9, 60.0)) > 1.0);
        assert!(env.noise_scale(Condition::new(0.9, 0.0)) < 1.0);
    }

    #[test]
    fn zero_sensitivity_pure_scaling_never_flips_sign() {
        let mut rng = StdRng::seed_from_u64(2);
        let env = Environment::paper_default();
        let puf = ArbiterPuf::random(32, &mut rng);
        let sens = Sensitivity::zero(32);
        let corner = env.puf_at(&puf, &sens, Condition::new(0.8, 60.0));
        for _ in 0..100 {
            let c = crate::Challenge::random(32, &mut rng);
            assert_eq!(puf.response(&c), corner.response(&c));
        }
    }

    #[test]
    fn per_stage_sensitivity_flips_marginal_challenges() {
        let mut rng = StdRng::seed_from_u64(3);
        let env = Environment::paper_default();
        let puf = ArbiterPuf::random(32, &mut rng);
        let sens = Sensitivity::random(32, env.sigma_v, env.sigma_t, &mut rng);
        let corner = env.puf_at(&puf, &sens, Condition::new(0.8, 60.0));
        let mut flips = 0;
        let trials = 5_000;
        for _ in 0..trials {
            let c = crate::Challenge::random(32, &mut rng);
            if puf.response(&c) != corner.response(&c) {
                flips += 1;
            }
        }
        // A small but nonzero fraction of responses flip at the corner.
        assert!(flips > 0, "corner flipped no responses");
        assert!(
            (flips as f64) < 0.2 * trials as f64,
            "corner flipped {flips}/{trials} responses — model too violent"
        );
    }

    #[test]
    fn condition_display() {
        assert_eq!(Condition::new(0.8, 60.0).to_string(), "0.8V/60°C");
    }

    #[test]
    fn sensitivity_dimensions() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = Sensitivity::random(32, 0.1, 0.001, &mut rng);
        assert_eq!(s.voltage().len(), 33);
        assert_eq!(s.temperature().len(), 33);
    }
}
