//! Challenges and the parity feature transform of the linear additive delay
//! model.
//!
//! A challenge is a vector of `k ≤ 128` stage-select bits. The delay model
//! and every machine-learning attack/enrollment model in this workspace work
//! on the *transformed* challenge
//! `φ(c) ∈ {−1, +1}^{k+1}`:
//!
//! ```text
//! φ_i(c) = Π_{j=i}^{k-1} (1 − 2 c_j)   for i in 0..k,   φ_k(c) = 1
//! ```
//!
//! which makes the arbiter delay difference a plain inner product
//! `Δ(c) = w · φ(c)` (Rührmair et al.; the paper's Refs. 1-3).

use crate::{PufError, MAX_STAGES};
use rand::Rng;
use std::fmt;

/// A challenge applied to every stage of a MUX arbiter PUF.
///
/// Bits are stored LSB-first in a `u128`, so any stage count from 1 to 128
/// is supported without allocation; the paper's chips use 32 stages
/// ([`crate::PAPER_STAGES`]) and a 64-stage variant is discussed for the
/// challenge-space argument in its §5.2.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Challenge {
    bits: u128,
    stages: u8,
}

impl Challenge {
    /// Creates a challenge from the low `stages` bits of `bits`.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::InvalidStageCount`] if `stages` is 0 or exceeds
    /// [`MAX_STAGES`].
    ///
    /// ```
    /// use puf_core::Challenge;
    /// let c = Challenge::from_bits(0b1011, 4)?;
    /// assert!(c.bit(0) && c.bit(1) && !c.bit(2) && c.bit(3));
    /// # Ok::<(), puf_core::PufError>(())
    /// ```
    pub fn from_bits(bits: u128, stages: usize) -> Result<Self, PufError> {
        if stages == 0 || stages > MAX_STAGES {
            return Err(PufError::InvalidStageCount { stages });
        }
        let mask = if stages == 128 {
            u128::MAX
        } else {
            (1u128 << stages) - 1
        };
        Ok(Self {
            bits: bits & mask,
            stages: stages as u8,
        })
    }

    /// Creates the all-zero challenge.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is 0 or exceeds [`MAX_STAGES`].
    pub fn zero(stages: usize) -> Self {
        // puf-lint: allow(L4): documented panic contract; from_bits is the fallible API
        Self::from_bits(0, stages).expect("invalid stage count")
    }

    /// Draws a uniformly random challenge.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is 0 or exceeds [`MAX_STAGES`].
    pub fn random<R: Rng + ?Sized>(stages: usize, rng: &mut R) -> Self {
        // puf-lint: allow(L4): documented panic contract; from_bits is the fallible API
        Self::from_bits(rng.gen::<u128>(), stages).expect("invalid stage count")
    }

    /// Number of stages (bits) in this challenge.
    pub fn stages(&self) -> usize {
        self.stages as usize
    }

    /// The raw bit storage, LSB-first.
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Returns stage bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.stages()`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.stages(), "bit index {i} out of range");
        (self.bits >> i) & 1 == 1
    }

    /// Returns a copy with stage bit `i` flipped.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.stages()`.
    pub fn with_flipped_bit(&self, i: usize) -> Self {
        assert!(i < self.stages(), "bit index {i} out of range");
        Self {
            bits: self.bits ^ (1u128 << i),
            stages: self.stages,
        }
    }

    /// Iterates over the stage bits, LSB (stage 0) first.
    pub fn iter_bits(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.stages()).map(move |i| self.bit(i))
    }

    /// Computes the parity feature transform `φ(c)`.
    ///
    /// The returned vector has `stages + 1` entries, each `±1`, with the
    /// constant bias feature last. This is the input representation used by
    /// the delay model, the enrollment linear regression and the MLP attack.
    ///
    /// ```
    /// use puf_core::Challenge;
    /// let c = Challenge::from_bits(0, 3)?; // all-zero challenge
    /// assert_eq!(c.features().as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    /// # Ok::<(), puf_core::PufError>(())
    /// ```
    pub fn features(&self) -> FeatureVector {
        let mut phi = vec![0.0f64; self.stages() + 1];
        self.features_into(&mut phi);
        FeatureVector(phi)
    }

    /// Writes the parity feature transform `φ(c)` into a caller-provided
    /// buffer — the allocation-free form of [`Challenge::features`] used by
    /// batch evaluation and the ML training loops.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.stages() + 1`.
    ///
    /// ```
    /// use puf_core::Challenge;
    /// let c = Challenge::from_bits(0, 3)?;
    /// let mut phi = [0.0f64; 4];
    /// c.features_into(&mut phi);
    /// assert_eq!(phi, [1.0, 1.0, 1.0, 1.0]);
    /// # Ok::<(), puf_core::PufError>(())
    /// ```
    pub fn features_into(&self, out: &mut [f64]) {
        let k = self.stages();
        assert_eq!(out.len(), k + 1, "feature buffer length mismatch");
        out[k] = 1.0;
        // Suffix products: φ_i = (1 − 2 c_i) · φ_{i+1}.
        let mut acc = 1.0;
        for i in (0..k).rev() {
            acc *= if self.bit(i) { -1.0 } else { 1.0 };
            out[i] = acc;
        }
    }
}

impl fmt::Debug for Challenge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Challenge({} stages, ", self.stages)?;
        for i in (0..self.stages()).rev() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Challenge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in (0..self.stages()).rev() {
            write!(f, "{}", u8::from(self.bit(i)))?;
        }
        Ok(())
    }
}

/// The transformed challenge `φ(c)` — a `±1` vector of length `stages + 1`.
///
/// Newtype over `Vec<f64>` so signatures distinguish raw challenges from
/// model inputs.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FeatureVector(pub(crate) Vec<f64>);

impl FeatureVector {
    /// The features as a slice; length is `stages + 1`.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Number of features (`stages + 1`).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty (never true for a valid transform).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Inner product with a weight vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, weights: &[f64]) -> f64 {
        assert_eq!(
            self.0.len(),
            weights.len(),
            "feature/weight length mismatch"
        );
        self.0.iter().zip(weights).map(|(a, b)| a * b).sum()
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }
}

impl AsRef<[f64]> for FeatureVector {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

impl From<FeatureVector> for Vec<f64> {
    fn from(v: FeatureVector) -> Self {
        v.0
    }
}

/// Generates `count` uniformly random challenges.
///
/// Convenience wrapper used throughout the test benches; duplicates are
/// possible (and astronomically unlikely for 32+ stages), matching the
/// paper's "1,000,000 randomly chosen challenges".
pub fn random_challenges<R: Rng + ?Sized>(
    stages: usize,
    count: usize,
    rng: &mut R,
) -> Vec<Challenge> {
    (0..count).map(|_| Challenge::random(stages, rng)).collect()
}

/// Iterates over **all** `2^stages` challenges in ascending bit order —
/// exact population statistics for small PUFs (uniqueness/uniformity
/// without sampling error, brute-force verification of analytic claims).
///
/// # Panics
///
/// Panics if `stages` is 0 or exceeds 24 (16.7 M challenges) — beyond that
/// exhaustive enumeration stops being a sane tool.
pub fn exhaustive_challenges(stages: usize) -> ExhaustiveChallenges {
    assert!(
        (1..=24).contains(&stages),
        "exhaustive enumeration supports 1..=24 stages, got {stages}"
    );
    ExhaustiveChallenges {
        next: 0,
        end: 1u64 << stages,
        stages: stages as u8,
    }
}

/// Iterator over every challenge of a small PUF; see
/// [`exhaustive_challenges`].
#[derive(Clone, Debug)]
pub struct ExhaustiveChallenges {
    next: u64,
    end: u64,
    stages: u8,
}

impl Iterator for ExhaustiveChallenges {
    type Item = Challenge;

    fn next(&mut self) -> Option<Challenge> {
        if self.next >= self.end {
            return None;
        }
        let c = Challenge {
            bits: u128::from(self.next),
            stages: self.stages,
        };
        self.next += 1;
        Some(c)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.end - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for ExhaustiveChallenges {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_bits_masks_extra_bits() {
        let c = Challenge::from_bits(0b1111_0000, 4).unwrap();
        assert_eq!(c.bits(), 0);
    }

    #[test]
    fn from_bits_rejects_bad_stage_counts() {
        assert_eq!(
            Challenge::from_bits(0, 0),
            Err(PufError::InvalidStageCount { stages: 0 })
        );
        assert_eq!(
            Challenge::from_bits(0, 129),
            Err(PufError::InvalidStageCount { stages: 129 })
        );
        assert!(Challenge::from_bits(u128::MAX, 128).is_ok());
    }

    #[test]
    fn features_of_zero_challenge_are_all_ones() {
        let c = Challenge::zero(32);
        assert!(c.features().as_slice().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn features_length_is_stages_plus_one() {
        for stages in [1, 2, 16, 32, 64, 128] {
            let c = Challenge::zero(stages);
            assert_eq!(c.features().len(), stages + 1);
        }
    }

    #[test]
    fn feature_definition_matches_suffix_product() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let c = Challenge::random(16, &mut rng);
            let phi = c.features();
            for i in 0..16 {
                let mut prod = 1.0;
                for j in i..16 {
                    prod *= 1.0 - 2.0 * f64::from(u8::from(c.bit(j)));
                }
                assert_eq!(phi.as_slice()[i], prod, "feature {i} of {c:?}");
            }
            assert_eq!(phi.as_slice()[16], 1.0);
        }
    }

    #[test]
    fn flipping_last_bit_flips_all_features_but_bias() {
        let c = Challenge::zero(8);
        let f0 = c.features();
        let f1 = c.with_flipped_bit(7).features();
        for i in 0..8 {
            assert_eq!(f0.as_slice()[i], -f1.as_slice()[i]);
        }
        assert_eq!(f1.as_slice()[8], 1.0);
    }

    #[test]
    fn display_and_debug_render_bits() {
        let c = Challenge::from_bits(0b101, 3).unwrap();
        assert_eq!(c.to_string(), "101");
        assert!(format!("{c:?}").contains("101"));
    }

    #[test]
    fn dot_product() {
        let c = Challenge::zero(2);
        let phi = c.features();
        assert_eq!(phi.dot(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_length_mismatch() {
        Challenge::zero(2).features().dot(&[1.0]);
    }

    #[test]
    fn random_challenges_have_uniform_bits() {
        let mut rng = StdRng::seed_from_u64(21);
        let cs = random_challenges(32, 20_000, &mut rng);
        for i in 0..32 {
            let ones = cs.iter().filter(|c| c.bit(i)).count() as f64;
            let frac = ones / cs.len() as f64;
            assert!((frac - 0.5).abs() < 0.02, "bit {i}: {frac}");
        }
    }

    #[test]
    fn exhaustive_enumeration_is_complete_and_unique() {
        let all: Vec<Challenge> = exhaustive_challenges(10).collect();
        assert_eq!(all.len(), 1024);
        let distinct: std::collections::HashSet<u128> = all.iter().map(|c| c.bits()).collect();
        assert_eq!(distinct.len(), 1024);
        // Each stage bit is exactly half ones.
        for i in 0..10 {
            assert_eq!(all.iter().filter(|c| c.bit(i)).count(), 512);
        }
        let it = exhaustive_challenges(6);
        assert_eq!(it.len(), 64);
    }

    #[test]
    #[should_panic(expected = "1..=24")]
    fn exhaustive_enumeration_rejects_large_stages() {
        exhaustive_challenges(25);
    }

    #[test]
    fn exhaustive_population_delta_moments_match_weights() {
        // Over the FULL challenge population the φ features are exactly
        // orthonormal, so mean(Δ) = w_bias and var(Δ) = Σ_{i<k} w_i².
        let mut rng = StdRng::seed_from_u64(77);
        let puf = crate::ArbiterPuf::random(12, &mut rng);
        let deltas: Vec<f64> = exhaustive_challenges(12)
            .map(|c| puf.delay_difference(&c))
            .collect();
        let mean = crate::math::mean(&deltas);
        let bias = puf.weights()[12];
        assert!((mean - bias).abs() < 1e-10, "mean {mean} vs bias {bias}");
        let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / deltas.len() as f64;
        let want: f64 = puf.weights()[..12].iter().map(|w| w * w).sum();
        assert!((var - want).abs() < 1e-10, "var {var} vs Σw² {want}");
    }

    proptest! {
        #[test]
        fn prop_features_are_pm_one(bits in any::<u128>(), stages in 1usize..=128) {
            let c = Challenge::from_bits(bits, stages).unwrap();
            for &v in c.features().as_slice() {
                prop_assert!(v == 1.0 || v == -1.0);
            }
        }

        #[test]
        fn prop_double_flip_is_identity(bits in any::<u128>(), stages in 1usize..=128, idx in 0usize..128) {
            let idx = idx % stages;
            let c = Challenge::from_bits(bits, stages).unwrap();
            prop_assert_eq!(c.with_flipped_bit(idx).with_flipped_bit(idx), c);
        }

        #[test]
        fn prop_flip_bit_i_changes_prefix_features(bits in any::<u128>(), stages in 2usize..=64, idx in 0usize..64) {
            let idx = idx % stages;
            let c = Challenge::from_bits(bits, stages).unwrap();
            let f0 = c.features();
            let f1 = c.with_flipped_bit(idx).features();
            // Features 0..=idx flip sign; features idx+1.. are untouched.
            for i in 0..=idx {
                prop_assert_eq!(f0.as_slice()[i], -f1.as_slice()[i]);
            }
            for i in (idx + 1)..=stages {
                prop_assert_eq!(f0.as_slice()[i], f1.as_slice()[i]);
            }
        }
    }
}
