//! Arbiter noise model and its calibration against the paper's measured
//! stability statistics.
//!
//! The paper's Fig. 2 reports that, over 1,000,000 random challenges
//! evaluated 100,000 times each at 0.9 V/25 °C, 39.7 % of challenges give a
//! 100 %-stable `0` and 40.1 % a 100 %-stable `1` — i.e. ≈80 % of CRPs are
//! stable on a single arbiter PUF. Given the delay normalisation
//! `Δ ~ N(0, 1)` (see [`crate::ArbiterPuf::random`]), the stable fraction is
//! a strictly decreasing function of the noise σ, so matching 80 % pins σ
//! uniquely. [`calibrate_noise_sigma`] solves for it; the result
//! (σ ≈ 0.0575) is cached by [`NoiseModel::paper_default`].

use crate::math::{normal_cdf, normal_pdf};
use std::sync::OnceLock;

/// Number of repeated evaluations behind each soft-response measurement in
/// the paper (its on-chip counters sample each challenge 100,000 times).
pub const NOMINAL_EVALUATIONS: u64 = 100_000;

/// Fraction of single-PUF CRPs that are 100 % stable in the paper's
/// nominal-condition silicon measurements (Fig. 2: 39.7 % + 40.1 %).
pub const PAPER_STABLE_FRACTION: f64 = 0.798;

/// Probability that all `n` evaluations agree, given per-evaluation
/// `P(response = 1) = p`: `pⁿ + (1 − p)ⁿ`, computed in log space.
pub fn all_agree_probability(p: f64, n: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&p));
    let n_f = n as f64;
    let ones = if p > 0.0 { (n_f * p.ln()).exp() } else { 0.0 };
    let zeros = if p < 1.0 {
        (n_f * (-p).ln_1p()).exp()
    } else {
        0.0
    };
    ones + zeros
}

/// Expected fraction of stable CRPs for a single arbiter PUF with delay
/// difference `Δ ~ N(0, 1)`, noise σ `sigma`, and `n_evals` evaluations per
/// challenge:
///
/// ```text
/// ∫ φ(x) · [Φ(x/σ)ⁿ + (1 − Φ(x/σ))ⁿ] dx
/// ```
///
/// evaluated by composite Simpson quadrature over `x ∈ [−10, 10]`.
///
/// # Panics
///
/// Panics if `sigma` is not positive and finite or `n_evals` is zero.
pub fn stable_fraction(sigma: f64, n_evals: u64) -> f64 {
    assert!(
        sigma > 0.0 && sigma.is_finite(),
        "sigma must be positive and finite"
    );
    assert!(n_evals > 0, "n_evals must be positive");
    const STEPS: usize = 4_000; // even
    const LO: f64 = -10.0;
    const HI: f64 = 10.0;
    let h = (HI - LO) / STEPS as f64;
    let f = |x: f64| normal_pdf(x) * all_agree_probability(normal_cdf(x / sigma), n_evals);
    let mut acc = f(LO) + f(HI);
    for i in 1..STEPS {
        let x = LO + h * i as f64;
        acc += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    acc * h / 3.0
}

/// Solves for the noise σ that produces `target` stable fraction under
/// `n_evals` evaluations per challenge, by bisection.
///
/// # Panics
///
/// Panics if `target` is not strictly inside `(0, 1)`.
///
/// ```
/// use puf_core::noise::{calibrate_noise_sigma, stable_fraction};
/// let sigma = calibrate_noise_sigma(0.8, 100_000);
/// assert!((stable_fraction(sigma, 100_000) - 0.8).abs() < 1e-6);
/// ```
pub fn calibrate_noise_sigma(target: f64, n_evals: u64) -> f64 {
    assert!(
        target > 0.0 && target < 1.0,
        "target stable fraction must be in (0,1)"
    );
    let (mut lo, mut hi) = (1e-6, 10.0);
    // stable_fraction is decreasing in sigma.
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if stable_fraction(mid, n_evals) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The nominal-condition arbiter noise model.
///
/// Wraps the noise σ (in normalised delay units) together with the number of
/// evaluations a counter measurement performs, and provides the analytic
/// soft response.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NoiseModel {
    sigma: f64,
    evaluations: u64,
}

impl NoiseModel {
    /// Creates a noise model with an explicit σ and evaluation count.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not positive and finite or `evaluations` is 0.
    pub fn new(sigma: f64, evaluations: u64) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "sigma must be positive and finite"
        );
        assert!(evaluations > 0, "evaluations must be positive");
        Self { sigma, evaluations }
    }

    /// The calibrated paper-default model: σ chosen so that
    /// [`PAPER_STABLE_FRACTION`] of single-PUF CRPs are 100 % stable over
    /// [`NOMINAL_EVALUATIONS`] evaluations. The calibration is solved once
    /// and cached for the process lifetime.
    pub fn paper_default() -> Self {
        static SIGMA: OnceLock<f64> = OnceLock::new();
        let sigma = *SIGMA
            .get_or_init(|| calibrate_noise_sigma(PAPER_STABLE_FRACTION, NOMINAL_EVALUATIONS));
        Self {
            sigma,
            evaluations: NOMINAL_EVALUATIONS,
        }
    }

    /// Noise standard deviation in normalised delay units.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Number of evaluations per counter measurement.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Analytic soft response for a delay difference: `Φ(Δ/σ)`.
    pub fn soft_response(&self, delta: f64) -> f64 {
        normal_cdf(delta / self.sigma)
    }

    /// Probability that a counter measurement of this many evaluations reads
    /// 100 %-stable for a challenge with delay difference `delta`.
    pub fn stability_probability(&self, delta: f64) -> f64 {
        all_agree_probability(self.soft_response(delta), self.evaluations)
    }

    /// Returns a copy with σ scaled by `factor` (used by the environment
    /// model for off-nominal conditions).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scaled(&self, factor: f64) -> Self {
        Self::new(self.sigma * factor, self.evaluations)
    }

    /// Returns a copy with a different evaluation count.
    pub fn with_evaluations(&self, evaluations: u64) -> Self {
        Self::new(self.sigma, evaluations)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_agree_probability_extremes() {
        assert_eq!(all_agree_probability(0.0, 100), 1.0);
        assert_eq!(all_agree_probability(1.0, 100), 1.0);
        let p_half = all_agree_probability(0.5, 10);
        assert!((p_half - 2.0 * 0.5f64.powi(10)).abs() < 1e-15);
    }

    #[test]
    fn all_agree_probability_decreases_toward_half() {
        let n = 1_000;
        let a = all_agree_probability(0.001, n);
        let b = all_agree_probability(0.01, n);
        let c = all_agree_probability(0.2, n);
        assert!(a > b && b > c);
    }

    #[test]
    fn stable_fraction_monotone_decreasing_in_sigma() {
        let f1 = stable_fraction(0.01, 100_000);
        let f2 = stable_fraction(0.05, 100_000);
        let f3 = stable_fraction(0.2, 100_000);
        assert!(f1 > f2 && f2 > f3);
        assert!(f1 < 1.0 && f3 > 0.0);
    }

    #[test]
    fn calibration_hits_paper_stable_fraction() {
        let model = NoiseModel::paper_default();
        let achieved = stable_fraction(model.sigma(), model.evaluations());
        assert!(
            (achieved - PAPER_STABLE_FRACTION).abs() < 1e-6,
            "achieved {achieved}"
        );
        // Sanity: the calibrated sigma is a few percent of the delay spread.
        assert!(
            model.sigma() > 0.02 && model.sigma() < 0.15,
            "sigma = {}",
            model.sigma()
        );
    }

    #[test]
    fn stability_probability_is_symmetric_and_tail_heavy() {
        let model = NoiseModel::paper_default();
        let p_pos = model.stability_probability(1.0);
        let p_neg = model.stability_probability(-1.0);
        assert!((p_pos - p_neg).abs() < 1e-9);
        assert!(p_pos > 0.999, "|Δ| = 1 should be deeply stable: {p_pos}");
        let p_marginal = model.stability_probability(0.0);
        assert!(p_marginal < 1e-3, "Δ = 0 should be unstable: {p_marginal}");
    }

    #[test]
    fn soft_response_midpoint() {
        let model = NoiseModel::new(0.05, 1_000);
        assert!((model.soft_response(0.0) - 0.5).abs() < 1e-7);
        assert!(model.soft_response(0.5) > 0.999);
        assert!(model.soft_response(-0.5) < 0.001);
    }

    #[test]
    fn scaled_and_with_evaluations() {
        let model = NoiseModel::new(0.05, 1_000);
        assert!((model.scaled(2.0).sigma() - 0.1).abs() < 1e-15);
        assert_eq!(model.with_evaluations(5).evaluations(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn new_rejects_zero_sigma() {
        NoiseModel::new(0.0, 10);
    }

    #[test]
    fn fewer_evaluations_make_more_crps_look_stable() {
        // With fewer samples a marginal CRP is more likely to agree by luck.
        let sigma = 0.0575;
        assert!(stable_fraction(sigma, 100) > stable_fraction(sigma, 100_000));
    }
}
