//! Transistor aging model (BTI/HCI-style drift).
//!
//! The paper's introduction names "temperature, voltage, and **aging**
//! conditions" as the reliability axes of arbiter PUFs; its evaluation
//! covers the first two. This module extends the substrate with the third
//! so that the challenge-selection margins can be stress-tested over device
//! lifetime.
//!
//! Bias temperature instability and hot-carrier injection shift individual
//! transistor thresholds roughly with the square root (sub-linear power
//! law) of stress time, with device-to-device randomness. On the delay
//! model that appears as a per-stage weight drift:
//!
//! ```text
//! wᵢ(t) = wᵢ(0) + dᵢ · (t / t₀)^exponent,     dᵢ ~ N(0, σ_drift²)
//! ```
//!
//! Because the drift directions `dᵢ` are frozen at fabrication, aging is a
//! *repeatable* shift (unlike noise): a marginal CRP drifts away and stays
//! away — exactly why the β safety margins exist.

use crate::arbiter::ArbiterPuf;
use crate::rngx;
use rand::Rng;

/// Reference stress time of the drift law (hours). Drifts are expressed as
/// the shift accumulated after this long at nominal stress.
pub const REFERENCE_HOURS: f64 = 10_000.0;

/// Population parameters of the aging process.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AgingModel {
    /// Per-stage drift σ accumulated at [`REFERENCE_HOURS`], in normalised
    /// delay units.
    pub sigma_drift: f64,
    /// Time-law exponent; 0.5 is the classic BTI square-root law.
    pub exponent: f64,
}

impl AgingModel {
    /// Default parameters: a worst-case delay-difference drift of roughly
    /// 0.1 normalised units at the 10,000-hour reference — comparable to
    /// one V/T corner, and safely inside the all-V/T β margins.
    pub fn paper_default() -> Self {
        Self {
            sigma_drift: 0.017,
            exponent: 0.5,
        }
    }

    /// No aging at all.
    pub fn none() -> Self {
        Self {
            sigma_drift: 0.0,
            exponent: 0.5,
        }
    }

    /// The scalar drift multiplier at `hours` of stress.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite `hours`.
    pub fn time_factor(&self, hours: f64) -> f64 {
        assert!(
            hours >= 0.0 && hours.is_finite(),
            "hours must be finite and non-negative"
        );
        (hours / REFERENCE_HOURS).powf(self.exponent)
    }
}

impl Default for AgingModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One PUF's frozen drift directions.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DriftVector {
    drift: Vec<f64>,
}

impl DriftVector {
    /// Draws per-stage drift directions for a `stages`-stage PUF.
    pub fn random<R: Rng + ?Sized>(stages: usize, model: &AgingModel, rng: &mut R) -> Self {
        let mut drift = vec![0.0; stages + 1];
        rngx::fill_normal(rng, model.sigma_drift, &mut drift);
        Self { drift }
    }

    /// A drift of exactly zero (an unaging PUF).
    pub fn zero(stages: usize) -> Self {
        Self {
            drift: vec![0.0; stages + 1],
        }
    }

    /// The per-stage drifts at the reference time (length `stages + 1`).
    pub fn as_slice(&self) -> &[f64] {
        &self.drift
    }

    /// The PUF's weights after `hours` of stress.
    ///
    /// # Panics
    ///
    /// Panics if the drift length does not match the PUF, or on invalid
    /// `hours`.
    pub fn aged_puf(&self, puf: &ArbiterPuf, model: &AgingModel, hours: f64) -> ArbiterPuf {
        assert_eq!(
            puf.weights().len(),
            self.drift.len(),
            "drift/PUF length mismatch"
        );
        let factor = model.time_factor(hours);
        puf.map_weights(|i, w| w + self.drift[i] * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::random_challenges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn time_factor_square_root_law() {
        let m = AgingModel::paper_default();
        assert_eq!(m.time_factor(0.0), 0.0);
        assert!((m.time_factor(REFERENCE_HOURS) - 1.0).abs() < 1e-12);
        assert!((m.time_factor(REFERENCE_HOURS * 4.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fresh_device_is_unchanged() {
        let mut rng = StdRng::seed_from_u64(1);
        let puf = ArbiterPuf::random(32, &mut rng);
        let model = AgingModel::paper_default();
        let drift = DriftVector::random(32, &model, &mut rng);
        let aged = drift.aged_puf(&puf, &model, 0.0);
        assert_eq!(aged.weights(), puf.weights());
    }

    #[test]
    fn aging_is_repeatable_and_monotone_in_time() {
        let mut rng = StdRng::seed_from_u64(2);
        let puf = ArbiterPuf::random(32, &mut rng);
        let model = AgingModel::paper_default();
        let drift = DriftVector::random(32, &model, &mut rng);
        let a1 = drift.aged_puf(&puf, &model, 1_000.0);
        let a1_again = drift.aged_puf(&puf, &model, 1_000.0);
        assert_eq!(a1.weights(), a1_again.weights(), "aging must be repeatable");
        // Each weight moves monotonically along its drift direction.
        let a4 = drift.aged_puf(&puf, &model, 4_000.0);
        for ((w0, w1), (w4, d)) in puf
            .weights()
            .iter()
            .zip(a1.weights())
            .zip(a4.weights().iter().zip(drift.as_slice()))
        {
            let step1 = w1 - w0;
            let step4 = w4 - w0;
            assert_eq!(step1.signum(), d.signum());
            assert!(step4.abs() >= step1.abs());
        }
    }

    #[test]
    fn aged_device_flips_some_marginal_responses() {
        let mut rng = StdRng::seed_from_u64(3);
        let puf = ArbiterPuf::random(32, &mut rng);
        let model = AgingModel::paper_default();
        let drift = DriftVector::random(32, &model, &mut rng);
        let old = drift.aged_puf(&puf, &model, 10.0 * REFERENCE_HOURS);
        let challenges = random_challenges(32, 10_000, &mut rng);
        let flips = challenges
            .iter()
            .filter(|c| puf.response(c) != old.response(c))
            .count();
        let rate = flips as f64 / challenges.len() as f64;
        assert!(rate > 0.001, "decade-aged device flipped nothing: {rate}");
        assert!(rate < 0.25, "aging model too violent: {rate}");
    }

    #[test]
    fn zero_drift_never_flips() {
        let mut rng = StdRng::seed_from_u64(4);
        let puf = ArbiterPuf::random(16, &mut rng);
        let model = AgingModel::paper_default();
        let drift = DriftVector::zero(16);
        let old = drift.aged_puf(&puf, &model, 100.0 * REFERENCE_HOURS);
        assert_eq!(old.weights(), puf.weights());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_hours_rejected() {
        AgingModel::paper_default().time_factor(-1.0);
    }
}
