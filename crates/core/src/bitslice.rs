//! Bit-sliced CRP evaluation: transposed sign planes, branch-free
//! sign-flip arithmetic, packed response words, explicit SIMD lanes.
//!
//! The batched engine in [`crate::batch`] expands a block's sign planes
//! back into a `±1.0` scratch and multiplies. This module removes even
//! that: a 32-stage arbiter response is `sign(w · φ)` over `±1` features,
//! and `±1.0 × w` is an *exact sign flip* of the IEEE-754 bit pattern —
//! so the kernel never materialises features at all. Instead it works on
//! the transposed layout directly:
//!
//! - [`FeatureMatrix`] already stores per-feature sign planes (bit `r` of
//!   plane `j` = sign of `φⱼ` for row `r`). Two consecutive 32-row planes
//!   fuse into one `u64` **plane word** covering a [`WORD_ROWS`]-challenge
//!   block — 64+ challenges per machine word, built with two shifts.
//! - Per block, the plane words expand once into a transposed `±1.0`
//!   scratch — `phi[j * 64 + r]` is feature `j` of row `r` — using
//!   branch-free variable shifts straight into the IEEE sign bit
//!   (`(±sign) ^ 1.0` bit arithmetic, no compare, no select). The
//!   expansion is amortised over every XOR member that walks the block.
//! - The accumulate kernel is one fused multiply-add per (feature,
//!   8-row vector): `acc[r] = fma(φⱼ(r), wⱼ, acc[r])`, features ascending
//!   per row — the exact summation order of the scalar
//!   [`dot`](crate::batch::dot). Because `φⱼ ∈ {±1.0}`, the product
//!   `φⱼ·wⱼ = ±wⱼ` is **exact** (a pure sign flip, no rounding), so the
//!   FMA's single rounding coincides with the separate multiply-then-add
//!   rounding — fused and unfused paths are bit-identical, and the FMA
//!   form halves the FP-port pressure (one FP op per vector instead of
//!   mul + add, with the `φ` load riding the separate load ports).
//! - Responses come out as **packed words**: 64 sign bits extracted
//!   straight into a `u64` per block ([`PackedBits`]), XOR-folded across
//!   members with one integer XOR per block instead of 64 boolean ops.
//!
//! Three lanes implement the kernel: a portable scalar lane (which LLVM
//! autovectorizes to the baseline ISA) and explicit `std::arch` x86-64
//! AVX2+FMA (4 rows per vector) and AVX-512F (8 rows per vector) lanes.
//! [`active_lane`] picks the widest lane the host supports via runtime
//! feature detection (cached after the first query); every public entry
//! point can also be forced onto a specific lane for differential testing
//! and per-lane benchmarks. Under Miri only the portable lane is
//! reported, so `scripts/sanitize.sh` never reaches the intrinsics.
//!
//! **Bit-exactness.** All three lanes perform the same exact-product
//! additions in the same per-row order; SIMD lanes are independent rows,
//! never a reassociated sum. The proptests at the bottom (and the
//! cross-crate suite in `tests/bitslice_equivalence.rs`) pin every lane
//! to the scalar path bit-for-bit across stages 1..=128, XOR widths
//! 1..=10 and ragged (non-multiple-of-64) batch sizes.
//!
//! Telemetry: packed entry points report under `eval.bitslice`
//! (span/histogram), `eval.bitslice.crps[_per_sec]` and the
//! `eval.bitslice.response` / `eval.bitslice.block` trace spans —
//! deliberately distinct from `eval.batch.*` so traces attribute time to
//! the right kernel.

use crate::arbiter::ArbiterPuf;
use crate::batch::{throughput_guard, FeatureMatrix};
use crate::xor::XorPuf;
use std::sync::OnceLock;

/// Challenges per bit-sliced block: one `u64` plane word per feature.
pub const WORD_ROWS: usize = 64;

/// IEEE-754 double sign bit — XORing it into a weight's bit pattern is an
/// exact multiplication by `−1.0`.
const SIGN_BIT: u64 = 1u64 << 63;

/// A SIMD lane kind the bit-sliced kernel can run on.
///
/// Variants exist on every platform so lane names can travel through
/// benches and reports; whether a lane can actually *execute* on this
/// host is [`Lane::is_available`]. Ordering is by vector width:
/// `Portable < Avx2 < Avx512`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lane {
    /// Scalar Rust, autovectorized by LLVM for the baseline target ISA.
    /// Always available; the only lane reported under Miri.
    Portable,
    /// Explicit AVX2 intrinsics, 4 rows per 256-bit vector.
    Avx2,
    /// Explicit AVX-512F intrinsics, 8 rows per 512-bit vector.
    Avx512,
}

impl Lane {
    /// Stable lowercase name for reports and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Portable => "portable",
            Lane::Avx2 => "avx2",
            Lane::Avx512 => "avx512",
        }
    }

    /// Whether this lane can execute on the current host.
    pub fn is_available(self) -> bool {
        available_lanes().contains(&self)
    }
}

/// Runtime lane detection, uncached. Miri sees only the portable lane so
/// the interpreter never executes vendor intrinsics.
fn detect_lanes() -> &'static [Lane] {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        // The AVX2 lane needs FMA too (Haswell+ ships both, but they are
        // separate CPUID bits); the AVX-512F lane's fused adds are part of
        // the F subset itself.
        let avx2 = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
        if avx2 && is_x86_feature_detected!("avx512f") {
            return &[Lane::Portable, Lane::Avx2, Lane::Avx512];
        }
        if avx2 {
            return &[Lane::Portable, Lane::Avx2];
        }
    }
    &[Lane::Portable]
}

/// The lanes usable on this host, narrowest first ([`Lane::Portable`] is
/// always present). Detection runs once and is cached.
pub fn available_lanes() -> &'static [Lane] {
    static LANES: OnceLock<&'static [Lane]> = OnceLock::new();
    LANES.get_or_init(detect_lanes)
}

/// The widest lane available on this host — what the un-suffixed entry
/// points ([`ArbiterPuf::response_batch_packed`] & co.) dispatch to.
pub fn active_lane() -> Lane {
    available_lanes().last().copied().unwrap_or(Lane::Portable)
}

/// Response bits packed 64 per `u64`, little-endian within each word
/// (challenge `i` lives at bit `i % 64` of word `i / 64`). Bits past
/// `len()` in the final word are always zero, so packed values compare
/// canonically with `==`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An all-zero packed vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(WORD_ROWS)],
            len,
        }
    }

    /// Packs a boolean slice (for tests and interop).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut packed = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            packed.words[i / WORD_ROWS] |= u64::from(b) << (i % WORD_ROWS);
        }
        packed
    }

    /// Builds a packed vector of `len` bits directly from backing words,
    /// normalizing to the canonical form: `words` is resized to exactly
    /// `len.div_ceil(64)` entries and tail bits past `len` are zeroed, so
    /// the result always compares with `==` like every other
    /// [`PackedBits`]. This is the re-entry point for word-level plane
    /// algebra (AND/OR/NOT/XOR over [`PackedBits::words`]) — complements
    /// in particular set tail bits that must not survive.
    pub fn from_words(mut words: Vec<u64>, len: usize) -> Self {
        words.resize(len.div_ceil(WORD_ROWS), 0);
        let live = len - (words.len().saturating_sub(1)) * WORD_ROWS;
        if let Some(last) = words.last_mut() {
            *last = mask_tail(*last, live);
        }
        Self { words, len }
    }

    /// Number of response bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words, tail bits zeroed.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Bit `i` as a boolean.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        (self.words[i / WORD_ROWS] >> (i % WORD_ROWS)) & 1 == 1
    }

    /// Population count over all bits.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Unpacks into a boolean vector (interop with the unpacked batch
    /// paths).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Iterates the bits in challenge order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }
}

// ---------------------------------------------------------------------------
// Plane-word expansion: packed sign bits -> transposed `±1.0` scratch.
// ---------------------------------------------------------------------------

/// Expands a block's plane words into the transposed scratch:
/// `phi[j * WORD_ROWS + r]` is `+1.0` where plane bit `r` of feature `j`
/// is set and `−1.0` otherwise. Feature-major so the accumulate kernel's
/// inner loads are contiguous rows.
fn expand_phi_portable(words: &[u64], phi: &mut [f64]) {
    const ONE: u64 = 1.0f64.to_bits();
    for (&w, col) in words.iter().zip(phi.chunks_exact_mut(WORD_ROWS)) {
        // A clear plane bit means φ = −1.0: shift it into the IEEE sign
        // position and OR with the bit pattern of 1.0 — branch-free.
        let nw = !w;
        for (r, f) in col.iter_mut().enumerate() {
            *f = f64::from_bits(ONE | (((nw >> r) & 1) << 63));
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
mod x86 {
    //! The explicit AVX2+FMA / AVX-512F lanes. Callers must verify the
    //! matching CPU features via [`super::available_lanes`] before calling
    //! anything here — that is the sole safety obligation; all memory
    //! accesses below are bounds-guaranteed slice accesses.

    use super::{SIGN_BIT, WORD_ROWS};
    use std::arch::x86_64::*;

    /// AVX2 plane-word expansion: for each 4-row group, shift the
    /// inverted plane word's row bit up to the sign position
    /// (`sllv` by `63 − r` per 64-bit element), mask to the sign bit and
    /// OR in the bit pattern of `1.0` — four `±1.0` lanes per store.
    ///
    /// # Safety
    ///
    /// Requires AVX2 at runtime.
    #[target_feature(enable = "avx2")]
    pub unsafe fn expand_phi_avx2(words: &[u64], phi: &mut [f64]) {
        // SAFETY: caller guarantees AVX2; sign/one/shift constants are
        // pure register constructions.
        let sign = _mm256_set1_epi64x(SIGN_BIT as i64);
        let one = _mm256_set1_epi64x(1.0f64.to_bits() as i64);
        for (&w, col) in words.iter().zip(phi.chunks_exact_mut(WORD_ROWS)) {
            let nw = _mm256_set1_epi64x(!w as i64);
            for (k, quad) in col.chunks_exact_mut(4).enumerate() {
                let r = (k * 4) as i64;
                let shifts = _mm256_set_epi64x(63 - (r + 3), 63 - (r + 2), 63 - (r + 1), 63 - r);
                let s = _mm256_and_si256(_mm256_sllv_epi64(nw, shifts), sign);
                let v = _mm256_castsi256_pd(_mm256_or_si256(s, one));
                // SAFETY: `quad` is exactly 4 f64s; unaligned store writes
                // 32 bytes inside it.
                _mm256_storeu_pd(quad.as_mut_ptr(), v);
            }
        }
    }

    /// AVX-512F plane-word expansion, 8 rows per vector: the shift-mask-or
    /// of [`expand_phi_avx2`] collapses into one `vpternlogq`
    /// (`(a & b) | c`, immediate `0xEA`).
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn expand_phi_avx512(words: &[u64], phi: &mut [f64]) {
        // SAFETY: caller guarantees AVX-512F; constants are register-only.
        let sign = _mm512_set1_epi64(SIGN_BIT as i64);
        let one = _mm512_set1_epi64(1.0f64.to_bits() as i64);
        for (&w, col) in words.iter().zip(phi.chunks_exact_mut(WORD_ROWS)) {
            let nw = _mm512_set1_epi64(!w as i64);
            for (k, oct) in col.chunks_exact_mut(8).enumerate() {
                let r = (k * 8) as i64;
                let shifts = _mm512_set_epi64(
                    63 - (r + 7),
                    63 - (r + 6),
                    63 - (r + 5),
                    63 - (r + 4),
                    63 - (r + 3),
                    63 - (r + 2),
                    63 - (r + 1),
                    63 - r,
                );
                // (shifted & sign) | one in a single ternary-logic op.
                let s = _mm512_ternarylogic_epi64::<0xEA>(_mm512_sllv_epi64(nw, shifts), sign, one);
                // SAFETY: `oct` is exactly 8 f64s; unaligned store writes
                // 64 bytes inside it.
                _mm512_storeu_pd(oct.as_mut_ptr(), _mm512_castsi512_pd(s));
            }
        }
    }

    /// The shared AVX2+FMA reduction for one 32-row half of a block: 8
    /// live 4-row accumulators, `acc = fma(φ, w, acc)` with one broadcast
    /// weight per feature. The product `φ·w` is exact (`φ` is `±1.0`), so
    /// the fused rounding equals the unfused one and each vector lane
    /// reproduces the scalar ascending-feature sum bit-for-bit — while
    /// spending a single FP op per vector.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA at runtime. `half` must be 0 or 1 and
    /// `phi.len()` must be `weights.len() * WORD_ROWS` (debug-asserted).
    #[target_feature(enable = "avx2,fma")]
    unsafe fn fma_half_avx2(phi: &[f64], weights: &[f64], half: usize) -> [__m256d; 8] {
        debug_assert_eq!(phi.len(), weights.len() * WORD_ROWS);
        debug_assert!(half < 2);
        let mut accv = [_mm256_setzero_pd(); 8];
        for (col, &w) in phi.chunks_exact(WORD_ROWS).zip(weights) {
            let wv = _mm256_set1_pd(w);
            let sub = &col[half * 32..half * 32 + 32];
            for (quad, a) in sub.chunks_exact(4).zip(accv.iter_mut()) {
                // SAFETY: `quad` is exactly 4 f64s; unaligned 32-byte
                // load stays in bounds.
                let f = _mm256_loadu_pd(quad.as_ptr());
                *a = _mm256_fmadd_pd(f, wv, *a);
            }
        }
        accv
    }

    /// AVX2+FMA accumulate kernel over one block's `±1.0` scratch: two
    /// 32-row halves of [`fma_half_avx2`], accumulators spilled to `acc`.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA at runtime. `phi.len()` must be
    /// `weights.len() * WORD_ROWS` (debug-asserted).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn accumulate_avx2(phi: &[f64], weights: &[f64], acc: &mut [f64; WORD_ROWS]) {
        for (half, out) in acc.chunks_exact_mut(32).enumerate() {
            // SAFETY: caller guarantees AVX2+FMA; half < 2.
            let accv = unsafe { fma_half_avx2(phi, weights, half) };
            for (quad, &a) in out.chunks_exact_mut(4).zip(accv.iter()) {
                // SAFETY: `quad` is exactly 4 f64s; unaligned 32-byte
                // store stays in bounds.
                _mm256_storeu_pd(quad.as_mut_ptr(), a);
            }
        }
    }

    /// AVX2+FMA fused sign extraction: same reduction as
    /// [`accumulate_avx2`], but the 64 comparisons `Δ > 0` happen in
    /// registers (`cmp_pd` + `movemask_pd`, quiet-ordered — identical
    /// semantics to the scalar `delta > 0.0` including NaN and `±0.0`)
    /// and the packed response word is returned directly. The deltas
    /// never touch memory.
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA at runtime. `phi.len()` must be
    /// `weights.len() * WORD_ROWS` (debug-asserted).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn accumulate_signs_avx2(phi: &[f64], weights: &[f64]) -> u64 {
        let zero = _mm256_setzero_pd();
        let mut word = 0u64;
        for half in 0..2 {
            // SAFETY: caller guarantees AVX2+FMA; half < 2.
            let accv = unsafe { fma_half_avx2(phi, weights, half) };
            for (k, &a) in accv.iter().enumerate() {
                let m = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(a, zero)) as u64;
                word |= m << (half * 32 + k * 4);
            }
        }
        word
    }

    /// The shared AVX-512F reduction for one whole 64-row block: 8 live
    /// 8-row accumulators, one pass of `acc = fma(φ, w, acc)`. Exact
    /// products make the fused rounding equal the scalar path's, so
    /// results are bit-identical (see [`fma_half_avx2`]).
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime. `phi.len()` must be
    /// `weights.len() * WORD_ROWS` (debug-asserted).
    #[target_feature(enable = "avx512f")]
    unsafe fn fma_block_avx512(phi: &[f64], weights: &[f64]) -> [__m512d; 8] {
        debug_assert_eq!(phi.len(), weights.len() * WORD_ROWS);
        let mut accv = [_mm512_setzero_pd(); 8];
        for (col, &w) in phi.chunks_exact(WORD_ROWS).zip(weights) {
            let wv = _mm512_set1_pd(w);
            for (oct, a) in col.chunks_exact(8).zip(accv.iter_mut()) {
                // SAFETY: `oct` is exactly 8 f64s; unaligned 64-byte load
                // stays in bounds.
                let f = _mm512_loadu_pd(oct.as_ptr());
                *a = _mm512_fmadd_pd(f, wv, *a);
            }
        }
        accv
    }

    /// AVX-512F accumulate kernel: [`fma_block_avx512`] with the
    /// accumulators spilled to `acc`.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime. `phi.len()` must be
    /// `weights.len() * WORD_ROWS` (debug-asserted).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn accumulate_avx512(phi: &[f64], weights: &[f64], acc: &mut [f64; WORD_ROWS]) {
        // SAFETY: caller guarantees AVX-512F.
        let accv = unsafe { fma_block_avx512(phi, weights) };
        for (oct, &a) in acc.chunks_exact_mut(8).zip(accv.iter()) {
            // SAFETY: `oct` is exactly 8 f64s; unaligned 64-byte store
            // stays in bounds.
            _mm512_storeu_pd(oct.as_mut_ptr(), a);
        }
    }

    /// Packs 8 accumulator vectors into one response word: each
    /// accumulator's 8 comparisons `Δ > 0` collapse into one
    /// `cmp_pd_mask` (quiet-ordered — identical semantics to the scalar
    /// `delta > 0.0` including NaN and `±0.0`).
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime.
    #[target_feature(enable = "avx512f")]
    unsafe fn signs_avx512(accv: &[__m512d; 8]) -> u64 {
        let zero = _mm512_setzero_pd();
        let mut word = 0u64;
        for (k, &a) in accv.iter().enumerate() {
            let m = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(a, zero) as u64;
            word |= m << (k * 8);
        }
        word
    }

    /// AVX-512F fused sign extraction: the reduction of
    /// [`accumulate_avx512`] with the deltas compared in registers —
    /// they never touch memory.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime. `phi.len()` must be
    /// `weights.len() * WORD_ROWS` (debug-asserted).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn accumulate_signs_avx512(phi: &[f64], weights: &[f64]) -> u64 {
        // SAFETY: caller guarantees AVX-512F.
        unsafe { signs_avx512(&fma_block_avx512(phi, weights)) }
    }

    /// AVX-512F fused sign extraction for a *pair* of members sharing one
    /// pass over the `±1.0` scratch: each φ vector is loaded once and
    /// feeds two FMAs (16 live accumulators — half the load-port traffic
    /// of two single-member passes, which is what the single-member
    /// kernel is bound by). Each member's sum still runs in ascending
    /// feature order, so both words are bit-identical to the scalar path.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime. `phi.len()` must be
    /// `w0.len() * WORD_ROWS` with `w1` the same length as `w0`
    /// (debug-asserted).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn accumulate_signs_pair_avx512(phi: &[f64], w0: &[f64], w1: &[f64]) -> (u64, u64) {
        debug_assert_eq!(phi.len(), w0.len() * WORD_ROWS);
        debug_assert_eq!(w0.len(), w1.len());
        let mut acc0 = [_mm512_setzero_pd(); 8];
        let mut acc1 = [_mm512_setzero_pd(); 8];
        for ((col, &x0), &x1) in phi.chunks_exact(WORD_ROWS).zip(w0).zip(w1) {
            let v0 = _mm512_set1_pd(x0);
            let v1 = _mm512_set1_pd(x1);
            for (k, oct) in col.chunks_exact(8).enumerate() {
                // SAFETY: `oct` is exactly 8 f64s; unaligned 64-byte load
                // stays in bounds.
                let f = _mm512_loadu_pd(oct.as_ptr());
                acc0[k] = _mm512_fmadd_pd(f, v0, acc0[k]);
                acc1[k] = _mm512_fmadd_pd(f, v1, acc1[k]);
            }
        }
        // SAFETY: caller guarantees AVX-512F.
        unsafe { (signs_avx512(&acc0), signs_avx512(&acc1)) }
    }

    /// AVX-512F fused sign extraction for a whole member roster in one
    /// target-feature region: the pairwise walk of
    /// [`accumulate_signs_pair_avx512`] without a call boundary per pair,
    /// so the pair kernel inlines and the next pair's broadcasts schedule
    /// under the previous pair's sign extraction. Word `m` is
    /// bit-identical to the per-member kernels.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F at runtime. `phi.len()` must be
    /// `m.len() * WORD_ROWS` for every member `m`, and
    /// `members.len() == words.len()` (debug-asserted).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn accumulate_signs_multi_avx512(
        phi: &[f64],
        members: &[&[f64]],
        words: &mut [u64],
    ) {
        debug_assert_eq!(members.len(), words.len());
        let mut pairs = members.chunks_exact(2).zip(words.chunks_exact_mut(2));
        for (pair, out) in &mut pairs {
            // SAFETY: caller guarantees AVX-512F and member lengths.
            let (w0, w1) = unsafe { accumulate_signs_pair_avx512(phi, pair[0], pair[1]) };
            out[0] = w0;
            out[1] = w1;
        }
        if members.len() % 2 == 1 {
            let last = members.len() - 1;
            // SAFETY: as above.
            words[last] = unsafe { accumulate_signs_avx512(phi, members[last]) };
        }
    }

    /// AVX2+FMA sibling of [`accumulate_signs_multi_avx512`]: one
    /// target-feature region per block for the whole roster (no pair
    /// kernel on this lane — 16 ymm registers only fit one member's
    /// accumulators).
    ///
    /// # Safety
    ///
    /// Requires AVX2 and FMA at runtime. `phi.len()` must be
    /// `m.len() * WORD_ROWS` for every member `m`, and
    /// `members.len() == words.len()` (debug-asserted).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn accumulate_signs_multi_avx2(phi: &[f64], members: &[&[f64]], words: &mut [u64]) {
        debug_assert_eq!(members.len(), words.len());
        for (w, m) in words.iter_mut().zip(members) {
            // SAFETY: caller guarantees AVX2+FMA and member lengths.
            *w = unsafe { accumulate_signs_avx2(phi, m) };
        }
    }
}

/// Lane-dispatched plane-word expansion.
fn expand_phi(lane: Lane, words: &[u64], phi: &mut [f64]) {
    match lane {
        Lane::Portable => expand_phi_portable(words, phi),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: SIMD lanes are only constructed after runtime feature
        // detection (public entry points assert `lane.is_available()`).
        Lane::Avx2 => unsafe { x86::expand_phi_avx2(words, phi) },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: as above — `Lane::Avx512` implies detected AVX-512F.
        Lane::Avx512 => unsafe { x86::expand_phi_avx512(words, phi) },
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        _ => expand_phi_portable(words, phi),
    }
}

/// Portable accumulate kernel: `acc[r] += φ[j][r] * w[j]`, rows
/// independent, features ascending — the scalar reference order (the
/// multiply by `±1.0` is exact), autovectorized by LLVM on the baseline
/// ISA.
fn accumulate_portable(phi: &[f64], weights: &[f64], acc: &mut [f64; WORD_ROWS]) {
    debug_assert_eq!(phi.len(), weights.len() * WORD_ROWS);
    acc.fill(0.0);
    for (col, &w) in phi.chunks_exact(WORD_ROWS).zip(weights) {
        for (a, &f) in acc.iter_mut().zip(col) {
            *a += f * w;
        }
    }
}

/// Lane-dispatched accumulate kernel (`±1.0` scratch × weights → 64
/// deltas).
fn accumulate(lane: Lane, phi: &[f64], weights: &[f64], acc: &mut [f64; WORD_ROWS]) {
    match lane {
        Lane::Portable => accumulate_portable(phi, weights, acc),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: SIMD lanes are only constructed after runtime feature
        // detection (public entry points assert `lane.is_available()`).
        Lane::Avx2 => unsafe { x86::accumulate_avx2(phi, weights, acc) },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: as above — `Lane::Avx512` implies detected AVX-512F.
        Lane::Avx512 => unsafe { x86::accumulate_avx512(phi, weights, acc) },
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        _ => accumulate_portable(phi, weights, acc),
    }
}

/// Portable fused sign extraction: accumulate into a local block, then
/// pack the 64 comparison bits.
fn accumulate_signs_portable(phi: &[f64], weights: &[f64]) -> u64 {
    let mut acc = [0.0f64; WORD_ROWS];
    accumulate_portable(phi, weights, &mut acc);
    pack_signs(&acc)
}

/// Lane-dispatched fused sign extraction (`±1.0` scratch × weights →
/// packed `Δ > 0` word). On the SIMD lanes the deltas stay in registers.
fn accumulate_signs(lane: Lane, phi: &[f64], weights: &[f64]) -> u64 {
    match lane {
        Lane::Portable => accumulate_signs_portable(phi, weights),
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: SIMD lanes are only constructed after runtime feature
        // detection (public entry points assert `lane.is_available()`).
        Lane::Avx2 => unsafe { x86::accumulate_signs_avx2(phi, weights) },
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        // SAFETY: as above — `Lane::Avx512` implies detected AVX-512F.
        Lane::Avx512 => unsafe { x86::accumulate_signs_avx512(phi, weights) },
        #[cfg(not(all(target_arch = "x86_64", not(miri))))]
        _ => accumulate_signs_portable(phi, weights),
    }
}

/// Fused sign extraction for all members of a block at once
/// (`words[m]` ← member `m`'s packed `Δ > 0` word). The AVX-512 lane
/// walks members pairwise so each φ vector load feeds two FMAs; the
/// narrower lanes fall back to one member at a time.
fn accumulate_signs_multi(lane: Lane, phi: &[f64], members: &[&[f64]], words: &mut [u64]) {
    debug_assert_eq!(members.len(), words.len());
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    match lane {
        // SAFETY: SIMD lanes are only constructed after runtime feature
        // detection (public entry points assert `lane.is_available()`),
        // so AVX-512F is present.
        Lane::Avx512 => return unsafe { x86::accumulate_signs_multi_avx512(phi, members, words) },
        // SAFETY: as above — `Lane::Avx2` implies detected AVX2+FMA.
        Lane::Avx2 => return unsafe { x86::accumulate_signs_multi_avx2(phi, members, words) },
        Lane::Portable => {}
    }
    for (w, m) in words.iter_mut().zip(members) {
        *w = accumulate_signs(lane, phi, m);
    }
}

/// Extracts the packed sign word of one block's deltas: bit `r` is set
/// iff `acc[r] > 0.0` — the same comparison as the scalar response path.
fn pack_signs(acc: &[f64; WORD_ROWS]) -> u64 {
    let mut word = 0u64;
    for (r, &d) in acc.iter().enumerate() {
        word |= u64::from(d > 0.0) << r;
    }
    word
}

/// f64 lanes per cache line: the `±1.0` scratch is padded so its first
/// element can sit on a 64-byte boundary.
const PHI_ALIGN: usize = 8;

/// Reusable per-call scratch: the block's plane words and the transposed
/// `±1.0` scratch (`width × 64` f64s — L1-resident at paper sizes).
///
/// The φ buffer is over-allocated by one cache line and exposed through
/// an offset so every column starts 64-byte aligned: a column is 64 f64s
/// = 8 whole lines, so one aligned base keeps *every* 8-row vector load
/// in the SIMD kernels on a single cache line. With a plain `Vec<f64>`
/// (8-byte aligned) nearly all 64-byte loads straddle two lines, which
/// doubles L1 accesses and moves the pair kernel from FMA-bound to
/// load-bound.
struct Scratch {
    words: Vec<u64>,
    phi_raw: Vec<f64>,
    phi_off: usize,
}

impl Scratch {
    fn new(width: usize) -> Self {
        let words = vec![0u64; width];
        let phi_raw = vec![0.0f64; width * WORD_ROWS + PHI_ALIGN - 1];
        let lane_pos = (phi_raw.as_ptr() as usize / std::mem::size_of::<f64>()) % PHI_ALIGN;
        let phi_off = (PHI_ALIGN - lane_pos) % PHI_ALIGN;
        Self {
            words,
            phi_raw,
            phi_off,
        }
    }

    /// The plane words and aligned φ scratch, split-borrowed for the
    /// expansion step (words read, φ written).
    fn expand_parts(&mut self) -> (&mut [u64], &mut [f64]) {
        let Self {
            words,
            phi_raw,
            phi_off,
        } = self;
        let len = phi_raw.len() - (PHI_ALIGN - 1);
        (words, &mut phi_raw[*phi_off..*phi_off + len])
    }
}

fn check_lane(lane: Lane) {
    assert!(
        lane.is_available(),
        "bitslice lane {:?} is not available on this host",
        lane
    );
}

fn check_stages(stages: usize, features: &FeatureMatrix) {
    assert_eq!(
        features.stages(),
        stages,
        "feature matrix stage count does not match the PUF"
    );
}

/// The blocked bit-sliced driver: for every 64-row block, assemble plane
/// words, expand the `±1.0` scratch once (amortised over all members), then
/// hand each member's 64 deltas to `consume(member, block, block_rows, acc)`.
fn blocked_bitslice(
    features: &FeatureMatrix,
    members: &[&[f64]],
    lane: Lane,
    mut consume: impl FnMut(usize, usize, usize, &[f64; WORD_ROWS]),
) {
    let rows = features.len();
    let mut scratch = Scratch::new(features.width());
    let mut acc = [0.0f64; WORD_ROWS];
    for block in 0..rows.div_ceil(WORD_ROWS) {
        let _block = puf_telemetry::trace_span!("eval.bitslice.block");
        let block_rows = WORD_ROWS.min(rows - block * WORD_ROWS);
        let (words, phi) = scratch.expand_parts();
        features.plane_words_into(block, words);
        expand_phi(lane, words, phi);
        for (mi, w) in members.iter().enumerate() {
            accumulate(lane, phi, w, &mut acc);
            consume(mi, block, block_rows, &acc);
        }
    }
}

/// The packed-response sibling of [`blocked_bitslice`]: hands `consume`
/// each member's masked sign word instead of raw deltas, so the SIMD
/// lanes keep deltas entirely in registers ([`accumulate_signs`]).
fn blocked_bitslice_signs(
    features: &FeatureMatrix,
    members: &[&[f64]],
    lane: Lane,
    mut consume: impl FnMut(usize, usize, u64),
) {
    let rows = features.len();
    let mut scratch = Scratch::new(features.width());
    let mut member_words = vec![0u64; members.len()];
    for block in 0..rows.div_ceil(WORD_ROWS) {
        let _block = puf_telemetry::trace_span!("eval.bitslice.block");
        let block_rows = WORD_ROWS.min(rows - block * WORD_ROWS);
        let (words, phi) = scratch.expand_parts();
        features.plane_words_into(block, words);
        expand_phi(lane, words, phi);
        accumulate_signs_multi(lane, phi, members, &mut member_words);
        for (mi, &word) in member_words.iter().enumerate() {
            consume(mi, block, mask_tail(word, block_rows));
        }
    }
}

/// Masks a packed block word down to its live rows (ragged final block).
fn mask_tail(word: u64, block_rows: usize) -> u64 {
    if block_rows < WORD_ROWS {
        word & ((1u64 << block_rows) - 1)
    } else {
        word
    }
}

/// Bit-sliced batched deltas on an explicit lane:
/// `out[i] = φ(cᵢ) · weights`, bit-identical to
/// [`FeatureMatrix::deltas_into`] and the scalar dot product.
///
/// # Panics
///
/// Panics if the lane is unavailable on this host, or on a
/// `weights`/`out` length mismatch.
pub fn deltas_into_with(features: &FeatureMatrix, weights: &[f64], lane: Lane, out: &mut [f64]) {
    check_lane(lane);
    assert_eq!(weights.len(), features.width(), "weight length mismatch");
    assert_eq!(out.len(), features.len(), "output length mismatch");
    blocked_bitslice(features, &[weights], lane, |_, block, block_rows, acc| {
        out[block * WORD_ROWS..block * WORD_ROWS + block_rows].copy_from_slice(&acc[..block_rows]);
    });
}

/// Bit-sliced packed responses of a single arbiter on an explicit lane.
/// Bit `i` equals [`ArbiterPuf::response`] on challenge `i`.
///
/// # Panics
///
/// Panics if the lane is unavailable on this host or on a stage mismatch.
pub fn arbiter_response_packed_with(
    puf: &ArbiterPuf,
    features: &FeatureMatrix,
    lane: Lane,
) -> PackedBits {
    check_lane(lane);
    check_stages(puf.stages(), features);
    let _span = puf_telemetry::span!("eval.bitslice");
    let _trace = puf_telemetry::trace_span!("eval.bitslice.response");
    let _throughput = throughput_guard("eval.bitslice", features.len());
    let mut out = PackedBits::zeros(features.len());
    blocked_bitslice_signs(features, &[puf.weights()], lane, |_, block, word| {
        out.words[block] = word;
    });
    out
}

/// Bit-sliced packed XOR responses on an explicit lane: each block's
/// member sign words fold with one integer XOR, so the combiner costs one
/// instruction per 64 challenges per member. Bit `i` equals
/// [`XorPuf::response`] on challenge `i`.
///
/// # Panics
///
/// Panics if the lane is unavailable on this host or on a stage mismatch.
pub fn xor_response_packed_with(xor: &XorPuf, features: &FeatureMatrix, lane: Lane) -> PackedBits {
    check_lane(lane);
    check_stages(xor.stages(), features);
    let _span = puf_telemetry::span!("eval.bitslice");
    let _trace = puf_telemetry::trace_span!("eval.bitslice.response");
    let _throughput = throughput_guard("eval.bitslice", features.len());
    let members: Vec<&[f64]> = xor.members().iter().map(|m| m.weights()).collect();
    let mut out = PackedBits::zeros(features.len());
    blocked_bitslice_signs(features, &members, lane, |_, block, word| {
        out.words[block] ^= word;
    });
    out
}

/// Bit-sliced packed XOR responses for a whole *fleet* of PUFs sharing
/// one challenge matrix — the hot loop of a multi-chip measurement
/// replay. All member weight vectors stream through a single pass per
/// 64-challenge block, so the plane expansion (and the pair kernel's φ
/// loads) amortise over every PUF in the fleet instead of one: per-CRP
/// cost approaches the pure FMA floor. `out[p]` bit `i` equals
/// `pufs[p].response` on challenge `i`.
///
/// # Panics
///
/// Panics if the lane is unavailable on this host or if any PUF's stage
/// count mismatches the matrix.
pub fn xor_response_packed_many_with(
    pufs: &[&XorPuf],
    features: &FeatureMatrix,
    lane: Lane,
) -> Vec<PackedBits> {
    check_lane(lane);
    for puf in pufs {
        check_stages(puf.stages(), features);
    }
    let _span = puf_telemetry::span!("eval.bitslice");
    let _trace = puf_telemetry::trace_span!("eval.bitslice.response");
    let _throughput = throughput_guard("eval.bitslice", features.len().saturating_mul(pufs.len()));
    let mut members: Vec<&[f64]> = Vec::new();
    let mut owner: Vec<usize> = Vec::new();
    for (p, puf) in pufs.iter().enumerate() {
        for m in puf.members() {
            members.push(m.weights());
            owner.push(p);
        }
    }
    let mut out: Vec<PackedBits> = pufs
        .iter()
        .map(|_| PackedBits::zeros(features.len()))
        .collect();
    blocked_bitslice_signs(features, &members, lane, |mi, block, word| {
        out[owner[mi]].words[block] ^= word;
    });
    out
}

/// [`xor_response_packed_many_with`] on the widest available lane.
///
/// # Panics
///
/// Panics if any PUF's stage count mismatches the matrix.
pub fn xor_response_packed_many(pufs: &[&XorPuf], features: &FeatureMatrix) -> Vec<PackedBits> {
    xor_response_packed_many_with(pufs, features, active_lane())
}

impl ArbiterPuf {
    /// Bit-sliced batched delay differences on the widest available lane —
    /// the drop-in accelerated sibling of [`ArbiterPuf::delta_batch_into`],
    /// bit-identical to it (and to [`ArbiterPuf::delay_difference`] per
    /// challenge).
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or if `out.len() != features.len()`.
    pub fn delta_batch_into_bitsliced(&self, features: &FeatureMatrix, out: &mut [f64]) {
        check_stages(self.stages(), features);
        deltas_into_with(features, self.weights(), active_lane(), out);
    }

    /// Bit-sliced packed responses on the widest available lane. Bit `i`
    /// equals [`ArbiterPuf::response`] on challenge `i`.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response_batch_packed(&self, features: &FeatureMatrix) -> PackedBits {
        arbiter_response_packed_with(self, features, active_lane())
    }
}

impl XorPuf {
    /// Bit-sliced packed XOR responses on the widest available lane. Bit
    /// `i` equals [`XorPuf::response`] on challenge `i`.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response_batch_packed(&self, features: &FeatureMatrix) -> PackedBits {
        xor_response_packed_with(self, features, active_lane())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::Challenge;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_batch(
        seed: u64,
        n: usize,
        stages: usize,
        count: usize,
    ) -> (XorPuf, Vec<Challenge>, FeatureMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xor = XorPuf::random(n, stages, &mut rng);
        let cs: Vec<Challenge> = (0..count)
            .map(|_| Challenge::random(stages, &mut rng))
            .collect();
        let fm = FeatureMatrix::from_challenges(&cs).unwrap();
        (xor, cs, fm)
    }

    #[test]
    fn lane_detection_is_sane() {
        let lanes = available_lanes();
        assert_eq!(lanes.first(), Some(&Lane::Portable));
        assert!(lanes.windows(2).all(|w| w[0] < w[1]), "ordered by width");
        assert!(active_lane().is_available());
        assert_eq!(Lane::Portable.name(), "portable");
        assert_eq!(Lane::Avx2.name(), "avx2");
        assert_eq!(Lane::Avx512.name(), "avx512");
    }

    #[test]
    fn packed_bits_roundtrip_and_tail_is_canonical() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let bits: Vec<bool> = (0..len).map(|i| i % 3 == 0).collect();
            let packed = PackedBits::from_bools(&bits);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.is_empty(), len == 0);
            assert_eq!(packed.to_bools(), bits);
            assert_eq!(packed.iter().collect::<Vec<_>>(), bits);
            assert_eq!(
                packed.count_ones(),
                bits.iter().filter(|&&b| b).count() as u64
            );
            if let Some(&last) = packed.words().last() {
                let live = len - (packed.words().len() - 1) * WORD_ROWS;
                assert_eq!(mask_tail(last, live), last, "tail bits must be zero");
            }
        }
    }

    #[test]
    fn from_words_normalizes_tail_and_length() {
        for len in [0usize, 1, 63, 64, 65, 130] {
            let bits: Vec<bool> = (0..len).map(|i| i % 5 != 2).collect();
            let canonical = PackedBits::from_bools(&bits);
            // Word-level complement pollutes the tail; from_words must
            // restore the canonical zero tail and exact word count.
            let negated: Vec<u64> = canonical.words().iter().map(|w| !w).collect();
            let complement = PackedBits::from_words(negated, len);
            assert_eq!(complement.len(), len);
            let expected: Vec<bool> = bits.iter().map(|&b| !b).collect();
            assert_eq!(complement.to_bools(), expected);
            assert_eq!(complement, PackedBits::from_bools(&expected));
            // Oversized and undersized word vectors normalize too.
            let mut oversized = canonical.words().to_vec();
            oversized.push(u64::MAX);
            assert_eq!(PackedBits::from_words(oversized, len), canonical);
            assert_eq!(
                PackedBits::from_words(Vec::new(), len),
                PackedBits::zeros(len)
            );
        }
    }

    #[test]
    fn every_lane_matches_batch_and_scalar() {
        let (xor, cs, fm) = random_batch(11, 5, 32, 3 * WORD_ROWS + 19);
        let batch = xor.response_batch(&fm);
        for &lane in available_lanes() {
            let packed = xor_response_packed_with(&xor, &fm, lane);
            assert_eq!(packed.to_bools(), batch, "lane {lane:?} vs batch");
            for (i, c) in cs.iter().enumerate() {
                assert_eq!(packed.get(i), xor.response(c), "lane {lane:?} row {i}");
            }
            assert_eq!(packed, PackedBits::from_bools(&batch));
        }
    }

    #[test]
    fn bitsliced_deltas_are_bit_exact_per_lane() {
        let (xor, cs, fm) = random_batch(12, 1, 64, 2 * WORD_ROWS + 7);
        let puf = &xor.members()[0];
        let mut out = vec![0.0f64; fm.len()];
        for &lane in available_lanes() {
            deltas_into_with(&fm, puf.weights(), lane, &mut out);
            for (i, c) in cs.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    puf.delay_difference(c).to_bits(),
                    "lane {lane:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn default_entry_points_use_active_lane() {
        let (xor, _, fm) = random_batch(13, 3, 32, WORD_ROWS + 5);
        let via_lane = xor_response_packed_with(&xor, &fm, active_lane());
        assert_eq!(xor.response_batch_packed(&fm), via_lane);
        let puf = &xor.members()[0];
        let packed = puf.response_batch_packed(&fm);
        assert_eq!(
            packed,
            arbiter_response_packed_with(puf, &fm, active_lane())
        );
        let mut deltas = vec![0.0f64; fm.len()];
        puf.delta_batch_into_bitsliced(&fm, &mut deltas);
        let reference = puf.delta_batch(&fm);
        assert_eq!(
            deltas.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
            reference.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fleet_packed_matches_per_puf_packed() {
        let mut rng = StdRng::seed_from_u64(29);
        // Odd widths (3 members) exercise the pair kernel's tail member;
        // a mixed fleet exercises the member→PUF fold.
        let fleet: Vec<XorPuf> = (0..5)
            .map(|i| XorPuf::random(1 + (i % 3) * 2, 32, &mut rng))
            .collect();
        let refs: Vec<&XorPuf> = fleet.iter().collect();
        let cs: Vec<Challenge> = (0..2 * WORD_ROWS + 31)
            .map(|_| Challenge::random(32, &mut rng))
            .collect();
        let fm = FeatureMatrix::from_challenges(&cs).unwrap();
        for &lane in available_lanes() {
            let many = xor_response_packed_many_with(&refs, &fm, lane);
            assert_eq!(many.len(), fleet.len());
            for (puf, packed) in fleet.iter().zip(&many) {
                assert_eq!(
                    packed,
                    &xor_response_packed_with(puf, &fm, lane),
                    "lane {lane:?}"
                );
            }
        }
        let default = xor_response_packed_many(&refs, &fm);
        assert_eq!(
            default,
            xor_response_packed_many_with(&refs, &fm, active_lane())
        );
    }

    #[test]
    fn empty_batch_yields_empty_packed() {
        let mut rng = StdRng::seed_from_u64(14);
        let xor = XorPuf::random(2, 16, &mut rng);
        let fm = FeatureMatrix::new(16, &[]).unwrap();
        let packed = xor.response_batch_packed(&fm);
        assert!(packed.is_empty());
        assert!(packed.words().is_empty());
    }

    #[test]
    #[should_panic(expected = "stage count does not match")]
    fn stage_mismatch_panics() {
        let mut rng = StdRng::seed_from_u64(15);
        let xor = XorPuf::random(2, 16, &mut rng);
        let fm = FeatureMatrix::new(8, &[Challenge::zero(8)]).unwrap();
        let _ = xor.response_batch_packed(&fm);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_packed_bit_identical_all_lanes(
            seed in any::<u64>(),
            n in 1usize..=10,
            stages in 1usize..=128,
            count in 1usize..=200,
        ) {
            let (xor, cs, fm) = random_batch(seed, n, stages, count);
            let batch = xor.response_batch(&fm);
            for &lane in available_lanes() {
                let packed = xor_response_packed_with(&xor, &fm, lane);
                prop_assert_eq!(packed.len(), count);
                prop_assert_eq!(&packed.to_bools(), &batch, "lane {:?}", lane);
                for (i, c) in cs.iter().enumerate() {
                    prop_assert_eq!(packed.get(i), xor.response(c));
                }
            }
        }

        #[test]
        fn prop_bitsliced_deltas_bit_identical_all_lanes(
            seed in any::<u64>(),
            stages in 1usize..=128,
            count in 1usize..=160,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let puf = ArbiterPuf::random(stages, &mut rng);
            let cs: Vec<Challenge> = (0..count)
                .map(|_| Challenge::random(stages, &mut rng))
                .collect();
            let fm = FeatureMatrix::from_challenges(&cs).unwrap();
            let mut out = vec![0.0f64; count];
            for &lane in available_lanes() {
                deltas_into_with(&fm, puf.weights(), lane, &mut out);
                for (i, c) in cs.iter().enumerate() {
                    prop_assert_eq!(
                        out[i].to_bits(),
                        puf.delay_difference(c).to_bits(),
                        "lane {:?} row {}", lane, i
                    );
                }
            }
        }
    }
}
