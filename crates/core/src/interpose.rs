//! The Interpose PUF (iPUF) — a two-layer composition proposed after this
//! paper (Nguyen et al., CHES 2019) specifically to resist both the MLP
//! attack of Fig. 4 and the reliability attack of Ref. 9, included here as
//! a forward-looking comparison point.
//!
//! An `(x, y)`-iPUF evaluates an upper `x`-XOR PUF on the challenge and
//! *interposes* the resulting bit into the middle of the challenge fed to a
//! lower `y`-XOR PUF (whose members therefore have `stages + 1` stages):
//!
//! ```text
//! b = upper_xor(c)
//! response = lower_xor(c[0..m] ‖ b ‖ c[m..])
//! ```
//!
//! The interposed bit makes the lower layer's effective challenge depend on
//! the upper layer non-linearly, while each layer alone stays a plain XOR
//! PUF — all machinery of this workspace (noise, measurement, attacks)
//! applies unchanged to the parts.

use crate::challenge::Challenge;
use crate::xor::XorPuf;
use crate::PufError;
use rand::Rng;

/// An `(x, y)` Interpose PUF over `stages`-bit challenges.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InterposePuf {
    upper: XorPuf,
    lower: XorPuf,
    interpose_at: usize,
}

impl InterposePuf {
    /// Draws a random `(x, y)`-iPUF with the interpose position at the
    /// middle of the lower challenge (the reference design's choice —
    /// mid-position maximises the interposed bit's influence).
    ///
    /// # Errors
    ///
    /// Returns [`PufError::InvalidStageCount`] if `stages + 1` exceeds the
    /// supported challenge width, and [`PufError::EmptyXor`] if either
    /// width is zero.
    pub fn random<R: Rng + ?Sized>(
        x: usize,
        y: usize,
        stages: usize,
        rng: &mut R,
    ) -> Result<Self, PufError> {
        if x == 0 || y == 0 {
            return Err(PufError::EmptyXor);
        }
        if stages == 0 || stages + 1 > crate::MAX_STAGES {
            return Err(PufError::InvalidStageCount { stages });
        }
        Ok(Self {
            upper: XorPuf::random(x, stages, rng),
            lower: XorPuf::random(y, stages + 1, rng),
            interpose_at: stages.div_ceil(2),
        })
    }

    /// Challenge width expected at the input.
    pub fn stages(&self) -> usize {
        self.upper.stages()
    }

    /// Upper-layer XOR width `x`.
    pub fn x(&self) -> usize {
        self.upper.n()
    }

    /// Lower-layer XOR width `y`.
    pub fn y(&self) -> usize {
        self.lower.n()
    }

    /// The bit position at which the upper response is interposed.
    pub fn interpose_at(&self) -> usize {
        self.interpose_at
    }

    /// Builds the lower layer's effective challenge for a given upper bit.
    fn interposed_challenge(&self, challenge: &Challenge, bit: bool) -> Challenge {
        let k = challenge.stages();
        let m = self.interpose_at;
        let bits = challenge.bits();
        let low = bits & ((1u128 << m) - 1);
        let high = (bits >> m) << (m + 1);
        let mid = u128::from(bit) << m;
        // puf-lint: allow(L4): k+1 <= MAX_STAGES was validated when the PUF was built
        Challenge::from_bits(low | mid | high, k + 1).expect("stage count validated at build")
    }

    /// Noiseless response.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response(&self, challenge: &Challenge) -> bool {
        let b = self.upper.response(challenge);
        self.lower
            .response(&self.interposed_challenge(challenge, b))
    }

    /// One noisy evaluation: every arbiter in both layers draws independent
    /// noise; the interposed bit itself can flip, which is the iPUF's extra
    /// instability channel.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or invalid `sigma_noise`.
    pub fn eval_noisy<R: Rng + ?Sized>(
        &self,
        challenge: &Challenge,
        sigma_noise: f64,
        rng: &mut R,
    ) -> bool {
        let b = self.upper.eval_noisy(challenge, sigma_noise, rng);
        self.lower
            .eval_noisy(&self.interposed_challenge(challenge, b), sigma_noise, rng)
    }

    /// Analytic soft response, marginalising over the upper bit:
    /// `P(1) = P(b=1)·P(lower=1 | b=1) + P(b=0)·P(lower=1 | b=0)`.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or invalid `sigma_noise`.
    pub fn soft_response(&self, challenge: &Challenge, sigma_noise: f64) -> f64 {
        let p_upper = self.upper.soft_response(challenge, sigma_noise);
        let p1 = self
            .lower
            .soft_response(&self.interposed_challenge(challenge, true), sigma_noise);
        let p0 = self
            .lower
            .soft_response(&self.interposed_challenge(challenge, false), sigma_noise);
        p_upper * p1 + (1.0 - p_upper) * p0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::challenge::random_challenges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ipuf(seed: u64) -> InterposePuf {
        let mut rng = StdRng::seed_from_u64(seed);
        InterposePuf::random(1, 1, 16, &mut rng).unwrap()
    }

    #[test]
    fn construction_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            InterposePuf::random(0, 1, 16, &mut rng),
            Err(PufError::EmptyXor)
        ));
        assert!(matches!(
            InterposePuf::random(1, 1, 128, &mut rng),
            Err(PufError::InvalidStageCount { .. })
        ));
        let p = InterposePuf::random(2, 3, 32, &mut rng).unwrap();
        assert_eq!((p.x(), p.y(), p.stages()), (2, 3, 32));
        assert_eq!(p.interpose_at(), 16);
    }

    #[test]
    fn interposed_challenge_layout() {
        let p = ipuf(2);
        let m = p.interpose_at();
        let c = Challenge::from_bits(0b1111_1111_1111_1111, 16).unwrap();
        let with0 = p.interposed_challenge(&c, false);
        let with1 = p.interposed_challenge(&c, true);
        assert_eq!(with0.stages(), 17);
        assert!(!with0.bit(m));
        assert!(with1.bit(m));
        // Every original bit survives on the correct side.
        for i in 0..m {
            assert!(with0.bit(i));
        }
        for i in (m + 1)..17 {
            assert!(with0.bit(i));
        }
    }

    #[test]
    fn response_is_deterministic_and_depends_on_upper_bit() {
        let p = ipuf(3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut influenced = 0;
        for _ in 0..300 {
            let c = Challenge::random(16, &mut rng);
            assert_eq!(p.response(&c), p.response(&c));
            let forced0 = p.lower.response(&p.interposed_challenge(&c, false));
            let forced1 = p.lower.response(&p.interposed_challenge(&c, true));
            if forced0 != forced1 {
                influenced += 1;
            }
        }
        assert!(
            influenced > 20,
            "the interposed bit should matter for a fair share of challenges: {influenced}/300"
        );
    }

    #[test]
    fn soft_response_matches_empirical() {
        let p = ipuf(5);
        let mut rng = StdRng::seed_from_u64(6);
        let c = Challenge::random(16, &mut rng);
        let sigma = 0.15;
        let analytic = p.soft_response(&c, sigma);
        let n = 30_000;
        let ones = (0..n).filter(|_| p.eval_noisy(&c, sigma, &mut rng)).count() as f64;
        assert!(
            (ones / n as f64 - analytic).abs() < 0.02,
            "empirical {} vs analytic {analytic}",
            ones / n as f64
        );
    }

    #[test]
    fn ipuf_resists_the_linear_attack_better_than_its_layers() {
        // Fit a linear model to ±1 responses (in-sample R²): the iPUF's
        // response must be less linear in φ(c) than a single arbiter PUF.
        let mut rng = StdRng::seed_from_u64(7);
        let ip = InterposePuf::random(1, 1, 16, &mut rng).unwrap();
        let single = crate::ArbiterPuf::random(16, &mut rng);
        let challenges = random_challenges(16, 3_000, &mut rng);
        let corr_with_best_linear = |targets: &[f64]| {
            // Upper bound on linear fit quality: correlation of targets
            // with the best single feature combination ≈ use normalised
            // projection onto the φ basis (orthonormal over random c).
            let k = 17;
            let mut proj = vec![0.0; k];
            for (c, &t) in challenges.iter().zip(targets) {
                for (j, &f) in c.features().as_slice().iter().enumerate() {
                    proj[j] += f * t;
                }
            }
            let n = challenges.len() as f64;
            (proj.iter().map(|p| (p / n) * (p / n)).sum::<f64>()).sqrt()
        };
        let ip_targets: Vec<f64> = challenges
            .iter()
            .map(|c| if ip.response(c) { 1.0 } else { -1.0 })
            .collect();
        let single_targets: Vec<f64> = challenges
            .iter()
            .map(|c| if single.response(c) { 1.0 } else { -1.0 })
            .collect();
        let r_ip = corr_with_best_linear(&ip_targets);
        let r_single = corr_with_best_linear(&single_targets);
        assert!(
            r_ip < r_single,
            "iPUF should be less linear: {r_ip} vs {r_single}"
        );
    }

    #[test]
    fn stability_decreases_relative_to_plain_xor_of_same_size() {
        // The interposed bit is one more noisy arbiter in the chain, so a
        // (1,1)-iPUF is at most as stable as a 1-XOR PUF under the same σ.
        let mut rng = StdRng::seed_from_u64(8);
        let ip = InterposePuf::random(1, 1, 16, &mut rng).unwrap();
        let plain = XorPuf::random(1, 16, &mut rng);
        let sigma = 0.06;
        let challenges = random_challenges(16, 4_000, &mut rng);
        let marginal = |softs: Vec<f64>| {
            softs.iter().filter(|&&s| s > 0.001 && s < 0.999).count() as f64
                / challenges.len() as f64
        };
        let ip_unstable = marginal(
            challenges
                .iter()
                .map(|c| ip.soft_response(c, sigma))
                .collect(),
        );
        let plain_unstable = marginal(
            challenges
                .iter()
                .map(|c| plain.soft_response(c, sigma))
                .collect(),
        );
        assert!(
            ip_unstable >= plain_unstable * 0.9,
            "iPUF should not be magically more stable: {ip_unstable} vs {plain_unstable}"
        );
    }
}
