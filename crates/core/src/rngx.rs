//! Random sampling helpers built on [`rand`]: standard-normal draws and a
//! binomial sampler with exact tail behaviour.
//!
//! The binomial sampler is the workhorse of the "1 trillion measurements"
//! substitution: instead of literally evaluating a PUF `N = 100_000` times,
//! an on-chip counter measurement draws `k ~ Binomial(N, p)` where `p` is
//! the analytic soft response. The tail events `k = 0` and `k = N` decide
//! whether a CRP is *stable*, so the sampler must realise
//! `P(k = 0) = (1 − p)^N` exactly rather than through a Gaussian blur.

use rand::Rng;

/// Draws one standard normal variate using the Marsaglia polar method.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(1);
/// let z = puf_core::rngx::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draws a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `sigma` is negative or non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(
        sigma >= 0.0 && sigma.is_finite(),
        "normal: sigma must be finite and non-negative, got {sigma}"
    );
    mean + sigma * standard_normal(rng)
}

/// Fills a slice with i.i.d. `N(0, sigma²)` draws.
pub fn fill_normal<R: Rng + ?Sized>(rng: &mut R, sigma: f64, out: &mut [f64]) {
    for v in out {
        *v = normal(rng, 0.0, sigma);
    }
}

/// Threshold below which the mean `n·p` is small enough for exact CDF
/// inversion to be cheap.
const INVERSION_MEAN_LIMIT: f64 = 60.0;

/// Samples `k ~ Binomial(n, p)`.
///
/// Strategy:
/// - If `n·min(p, 1−p)` is small (≤ 60) the binomial CDF is inverted exactly
///   by walking the pmf recurrence — this regime contains the tail events
///   that decide CRP stability, so they occur with exactly the right
///   probability.
/// - Otherwise both tails are ≥ 25σ away and a Gaussian approximation with
///   continuity correction is statistically indistinguishable; the result is
///   clamped to `[0, n]`.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// let mut rng = StdRng::seed_from_u64(2);
/// let k = puf_core::rngx::binomial(&mut rng, 100_000, 0.0);
/// assert_eq!(k, 0);
/// let k = puf_core::rngx::binomial(&mut rng, 100_000, 1.0);
/// assert_eq!(k, 100_000);
/// ```
pub fn binomial<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "binomial: p must be in [0,1]");
    if n == 0 || p == 0.0 {
        return 0;
    }
    if p == 1.0 {
        return n;
    }
    // Work with the smaller tail for numerical stability.
    if p > 0.5 {
        return n - binomial(rng, n, 1.0 - p);
    }
    let mean = n as f64 * p;
    if mean <= INVERSION_MEAN_LIMIT {
        binomial_inversion(rng, n, p)
    } else {
        let sigma = (n as f64 * p * (1.0 - p)).sqrt();
        let z = standard_normal(rng);
        let k = (mean + sigma * z + 0.5).floor();
        k.clamp(0.0, n as f64) as u64
    }
}

/// Exact CDF inversion: `P(k=0) = (1−p)^n`, then the pmf recurrence
/// `pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p)`.
fn binomial_inversion<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> u64 {
    let q = 1.0 - p;
    // log-space start to survive n = 100_000 with tiny p.
    let mut pmf = (n as f64 * q.ln()).exp();
    let ratio = p / q;
    let mut cdf = pmf;
    let u: f64 = rng.gen();
    let mut k: u64 = 0;
    while u > cdf && k < n {
        pmf *= (n - k) as f64 / (k + 1) as f64 * ratio;
        k += 1;
        cdf += pmf;
        // Guard against floating-point stall far in the tail.
        if pmf < 1e-300 && cdf < u {
            break;
        }
    }
    k
}

/// A deterministic standard-normal value derived by hashing `(seed, x)` —
/// a "frozen Gaussian field" over a 128-bit index space.
///
/// Used to model the *repeatable* nonlinear residual of a real MUX arbiter
/// PUF relative to the idealised linear additive delay model: the value is
/// the same every time for the same `(seed, x)` (unlike thermal noise), yet
/// statistically independent across distinct challenges, so no linear model
/// can learn it.
pub fn gaussian_hash(seed: u64, x: u128) -> f64 {
    // SplitMix64 over the three words, then Box–Muller from two uniforms.
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let h1 = splitmix(seed ^ splitmix(x as u64));
    let h2 = splitmix(h1 ^ splitmix((x >> 64) as u64));
    // Map to (0,1); keep u1 strictly positive for the log.
    let u1 = ((h1 >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples the *measured soft response* `k/n` of an `n`-evaluation counter
/// measurement given the analytic soft response `p`.
pub fn measured_soft_response<R: Rng + ?Sized>(rng: &mut R, n: u64, p: f64) -> f64 {
    binomial(rng, n, p) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn binomial_mean_matches_np() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, p) in &[(50u64, 0.3), (1_000, 0.001), (100_000, 0.5), (100_000, 0.9)] {
            let trials = 2_000;
            let mut acc = 0.0;
            for _ in 0..trials {
                acc += binomial(&mut rng, n, p) as f64;
            }
            let got = acc / trials as f64;
            let want = n as f64 * p;
            let sigma = (n as f64 * p * (1.0 - p)).sqrt();
            let tol = 5.0 * sigma / (trials as f64).sqrt() + 1e-9;
            assert!(
                (got - want).abs() < tol,
                "n={n} p={p}: mean {got} want {want} tol {tol}"
            );
        }
    }

    #[test]
    fn binomial_zero_tail_probability_is_exact() {
        // With p = 2e-5 and n = 100_000, P(k = 0) = (1-p)^n ≈ exp(-2) ≈ 0.1353.
        let mut rng = StdRng::seed_from_u64(99);
        let (n, p) = (100_000u64, 2e-5);
        let trials = 20_000;
        let zeros = (0..trials)
            .filter(|_| binomial(&mut rng, n, p) == 0)
            .count();
        let got = zeros as f64 / trials as f64;
        let want = (1.0 - p)
            .powi(n as i32)
            .max((n as f64 * (1.0 - p).ln()).exp());
        assert!((got - want).abs() < 0.01, "P(k=0): got {got}, want {want}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(binomial(&mut rng, 0, 0.5), 0);
        assert_eq!(binomial(&mut rng, 10, 0.0), 0);
        assert_eq!(binomial(&mut rng, 10, 1.0), 10);
        for _ in 0..100 {
            let k = binomial(&mut rng, 5, 0.5);
            assert!(k <= 5);
        }
    }

    #[test]
    fn measured_soft_response_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let p: f64 = rng.gen();
            let s = measured_soft_response(&mut rng, 1_000, p);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn binomial_rejects_bad_p() {
        let mut rng = StdRng::seed_from_u64(5);
        binomial(&mut rng, 10, 1.5);
    }

    #[test]
    fn gaussian_hash_is_deterministic_and_standard_normal() {
        assert_eq!(gaussian_hash(7, 42), gaussian_hash(7, 42));
        assert_ne!(gaussian_hash(7, 42), gaussian_hash(8, 42));
        assert_ne!(gaussian_hash(7, 42), gaussian_hash(7, 43));
        let n = 100_000u128;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for x in 0..n {
            let v = gaussian_hash(123, x * 0x1234_5678_9ABC + 17);
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
