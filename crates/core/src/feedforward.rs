//! Feed-forward MUX arbiter PUFs.
//!
//! The paper's Ref. 1 (Zhou et al., ISLPED 2016 — "Soft Response
//! Generation and Thresholding Strategies for Linear and Feedforward MUX
//! PUFs") covers this classic variant: an intermediate arbiter taps the
//! race at stage `tap_stage` and its decision drives the select input of a
//! later stage `inject_stage`, replacing that stage's challenge bit. The
//! response is no longer a linear function of the transformed challenge,
//! which defeats plain linear/logistic attacks — at the cost of extra
//! instability (two arbiters can now be marginal).
//!
//! Under the additive delay model the intermediate arbiter decides on the
//! partial sum of stage contributions up to the tap:
//!
//! ```text
//! Δ_tap(c)  = Σ_{i ≤ tap} w_i · φ_i^{(tap)}(c)          (+ tap arbiter bias)
//! c'        = c  with  c[inject] := (Δ_tap + ε > 0)
//! Δ(c)      = w · φ(c')
//! ```

use crate::arbiter::ArbiterPuf;
use crate::challenge::Challenge;
use crate::math::normal_cdf;
use crate::rngx;
use crate::PufError;
use rand::Rng;

/// A feed-forward arbiter PUF: a linear arbiter PUF plus one feed-forward
/// loop from `tap_stage` to `inject_stage`.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FeedForwardPuf {
    base: ArbiterPuf,
    /// Weights of the intermediate race seen by the tap arbiter
    /// (length `tap_stage + 2`: stages `0..=tap_stage` plus a bias).
    tap_weights: Vec<f64>,
    tap_stage: usize,
    inject_stage: usize,
}

impl FeedForwardPuf {
    /// Draws a random feed-forward PUF.
    ///
    /// # Errors
    ///
    /// Returns [`PufError::InvalidParameter`] unless
    /// `tap_stage < inject_stage < stages`.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is out of the supported range (see
    /// [`ArbiterPuf::random`]).
    pub fn random<R: Rng + ?Sized>(
        stages: usize,
        tap_stage: usize,
        inject_stage: usize,
        rng: &mut R,
    ) -> Result<Self, PufError> {
        if tap_stage >= inject_stage || inject_stage >= stages {
            return Err(PufError::InvalidParameter {
                name: "tap/inject",
                constraint: "requires tap_stage < inject_stage < stages",
            });
        }
        let base = ArbiterPuf::random(stages, rng);
        let sigma = (1.0 / (tap_stage as f64 + 2.0)).sqrt();
        let mut tap_weights = vec![0.0; tap_stage + 2];
        rngx::fill_normal(rng, sigma, &mut tap_weights);
        Ok(Self {
            base,
            tap_weights,
            tap_stage,
            inject_stage,
        })
    }

    /// The paper-geometry default: 32 stages, tap after stage 7 injecting
    /// into stage 23.
    ///
    /// # Panics
    ///
    /// Never — the hard-coded geometry is valid.
    pub fn random_paper_geometry<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // puf-lint: allow(L4): hard-coded geometry constants are statically valid
        Self::random(crate::PAPER_STAGES, 7, 23, rng).expect("valid geometry")
    }

    /// Number of delay stages.
    pub fn stages(&self) -> usize {
        self.base.stages()
    }

    /// The tap stage (the intermediate arbiter's position).
    pub fn tap_stage(&self) -> usize {
        self.tap_stage
    }

    /// The injected stage (whose select bit comes from the tap arbiter).
    pub fn inject_stage(&self) -> usize {
        self.inject_stage
    }

    /// The underlying linear PUF (as deployed, its stage `inject_stage`
    /// select is internal).
    pub fn base(&self) -> &ArbiterPuf {
        &self.base
    }

    /// The intermediate race's delay difference at the tap.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn tap_delay_difference(&self, challenge: &Challenge) -> f64 {
        assert_eq!(
            challenge.stages(),
            self.stages(),
            "challenge/PUF stage mismatch"
        );
        // φ over the truncated (tap_stage+1)-stage prefix.
        let k = self.tap_stage + 1;
        let mut acc = 0.0;
        let mut suffix = 1.0;
        for i in (0..k).rev() {
            suffix *= if challenge.bit(i) { -1.0 } else { 1.0 };
            acc += self.tap_weights[i] * suffix;
        }
        // Recompute with correct ordering: φ_i = Π_{j=i..k-1}(1-2c_j);
        // the loop above accumulated exactly that.
        acc + self.tap_weights[k]
    }

    /// The effective challenge after the feed-forward substitution, given
    /// the tap arbiter's decision.
    fn effective_challenge(&self, challenge: &Challenge, tap_bit: bool) -> Challenge {
        let current = challenge.bit(self.inject_stage);
        if current == tap_bit {
            *challenge
        } else {
            challenge.with_flipped_bit(self.inject_stage)
        }
    }

    /// Final-race delay difference given a noiseless tap decision.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn delay_difference(&self, challenge: &Challenge) -> f64 {
        let tap_bit = self.tap_delay_difference(challenge) > 0.0;
        self.base
            .delay_difference(&self.effective_challenge(challenge, tap_bit))
    }

    /// Noiseless response.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch.
    pub fn response(&self, challenge: &Challenge) -> bool {
        self.delay_difference(challenge) > 0.0
    }

    /// One noisy evaluation: both arbiters receive independent noise.
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or invalid `sigma_noise`.
    pub fn eval_noisy<R: Rng + ?Sized>(
        &self,
        challenge: &Challenge,
        sigma_noise: f64,
        rng: &mut R,
    ) -> bool {
        let tap_bit =
            self.tap_delay_difference(challenge) + rngx::normal(rng, 0.0, sigma_noise) > 0.0;
        let eff = self.effective_challenge(challenge, tap_bit);
        self.base.delay_difference(&eff) + rngx::normal(rng, 0.0, sigma_noise) > 0.0
    }

    /// Analytic soft response, marginalising over the tap arbiter's noise:
    ///
    /// ```text
    /// P(1) = P(tap=1)·Φ(Δ(c|tap=1)/σ) + P(tap=0)·Φ(Δ(c|tap=0)/σ)
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on a stage mismatch or invalid `sigma_noise`.
    pub fn soft_response(&self, challenge: &Challenge, sigma_noise: f64) -> f64 {
        assert!(
            sigma_noise >= 0.0 && sigma_noise.is_finite(),
            "sigma_noise must be finite and non-negative"
        );
        let tap_delta = self.tap_delay_difference(challenge);
        if sigma_noise == 0.0 {
            return if self.response(challenge) { 1.0 } else { 0.0 };
        }
        let p_tap1 = normal_cdf(tap_delta / sigma_noise);
        let d1 = self
            .base
            .delay_difference(&self.effective_challenge(challenge, true));
        let d0 = self
            .base
            .delay_difference(&self.effective_challenge(challenge, false));
        p_tap1 * normal_cdf(d1 / sigma_noise) + (1.0 - p_tap1) * normal_cdf(d0 / sigma_noise)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ff(seed: u64) -> FeedForwardPuf {
        let mut rng = StdRng::seed_from_u64(seed);
        FeedForwardPuf::random(16, 4, 10, &mut rng).unwrap()
    }

    #[test]
    fn geometry_validation() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(FeedForwardPuf::random(16, 10, 4, &mut rng).is_err());
        assert!(FeedForwardPuf::random(16, 4, 4, &mut rng).is_err());
        assert!(FeedForwardPuf::random(16, 4, 16, &mut rng).is_err());
        assert!(FeedForwardPuf::random(16, 4, 15, &mut rng).is_ok());
        let p = FeedForwardPuf::random_paper_geometry(&mut rng);
        assert_eq!(p.stages(), 32);
        assert_eq!(p.tap_stage(), 7);
        assert_eq!(p.inject_stage(), 23);
    }

    #[test]
    fn response_is_deterministic() {
        let puf = ff(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let c = Challenge::random(16, &mut rng);
            assert_eq!(puf.response(&c), puf.response(&c));
        }
    }

    #[test]
    fn injected_bit_is_ignored() {
        // Flipping the injected stage's challenge bit never changes the
        // response: that select input is driven by the tap arbiter.
        let puf = ff(4);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let c = Challenge::random(16, &mut rng);
            let flipped = c.with_flipped_bit(puf.inject_stage());
            assert_eq!(puf.response(&c), puf.response(&flipped));
        }
    }

    #[test]
    fn response_is_not_linear_in_features() {
        // A least-squares linear model fit on the ±1 responses of a
        // feed-forward PUF explains them substantially worse than it does a
        // plain arbiter PUF's.
        use crate::challenge::random_challenges;
        let mut rng = StdRng::seed_from_u64(6);
        let ffp = FeedForwardPuf::random(16, 3, 12, &mut rng).unwrap();
        let linear = ArbiterPuf::random(16, &mut rng);
        let challenges = random_challenges(16, 3_000, &mut rng);

        let fit_r2 = |targets: &[f64]| {
            // Normal-equation fit of targets on φ, returning in-sample R².
            let k = 17;
            let mut xtx = vec![0.0; k * k];
            let mut xty = vec![0.0; k];
            for (c, &t) in challenges.iter().zip(targets) {
                let phi = c.features();
                let p = phi.as_slice();
                for i in 0..k {
                    xty[i] += p[i] * t;
                    for j in 0..k {
                        xtx[i * k + j] += p[i] * p[j];
                    }
                }
            }
            // Jacobi-free: solve by Gaussian elimination (tiny system).
            let mut a = xtx;
            let mut b = xty;
            for col in 0..k {
                let piv = (col..k)
                    .max_by(|&r1, &r2| {
                        a[r1 * k + col]
                            .abs()
                            .partial_cmp(&a[r2 * k + col].abs())
                            .unwrap()
                    })
                    .unwrap();
                a.swap(piv * k + col, col * k + col);
                for j in 0..k {
                    if j != col {
                        a.swap(piv * k + j, col * k + j);
                    }
                }
                b.swap(piv, col);
                let d = a[col * k + col];
                for r in 0..k {
                    if r == col || a[r * k + col] == 0.0 {
                        continue;
                    }
                    let f = a[r * k + col] / d;
                    for j in 0..k {
                        a[r * k + j] -= f * a[col * k + j];
                    }
                    b[r] -= f * b[col];
                }
            }
            let theta: Vec<f64> = (0..k).map(|i| b[i] / a[i * k + i]).collect();
            let mut ss_res = 0.0;
            let mut ss_tot = 0.0;
            let mean = targets.iter().sum::<f64>() / targets.len() as f64;
            for (c, &t) in challenges.iter().zip(targets) {
                let pred: f64 = c
                    .features()
                    .as_slice()
                    .iter()
                    .zip(&theta)
                    .map(|(x, w)| x * w)
                    .sum();
                ss_res += (t - pred) * (t - pred);
                ss_tot += (t - mean) * (t - mean);
            }
            1.0 - ss_res / ss_tot
        };

        let ff_targets: Vec<f64> = challenges
            .iter()
            .map(|c| if ffp.response(c) { 1.0 } else { -1.0 })
            .collect();
        let lin_targets: Vec<f64> = challenges
            .iter()
            .map(|c| if linear.response(c) { 1.0 } else { -1.0 })
            .collect();
        let r2_ff = fit_r2(&ff_targets);
        let r2_lin = fit_r2(&lin_targets);
        assert!(
            r2_ff < r2_lin - 0.1,
            "feed-forward should be less linear: R² {r2_ff} vs {r2_lin}"
        );
    }

    #[test]
    fn soft_response_matches_empirical_rate() {
        let puf = ff(7);
        let mut rng = StdRng::seed_from_u64(8);
        let c = Challenge::random(16, &mut rng);
        let sigma = 0.2;
        let analytic = puf.soft_response(&c, sigma);
        let n = 40_000;
        let ones = (0..n)
            .filter(|_| puf.eval_noisy(&c, sigma, &mut rng))
            .count() as f64;
        assert!(
            (ones / n as f64 - analytic).abs() < 0.015,
            "empirical {} vs analytic {analytic}",
            ones / n as f64
        );
    }

    #[test]
    fn tap_delay_matches_truncated_linear_model() {
        // Hand-check the tap partial sum against a direct product formula.
        let puf = ff(9);
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..50 {
            let c = Challenge::random(16, &mut rng);
            let k = puf.tap_stage() + 1;
            let mut want = puf.tap_weights[k];
            for i in 0..k {
                let mut prod = 1.0;
                for j in i..k {
                    prod *= if c.bit(j) { -1.0 } else { 1.0 };
                }
                want += puf.tap_weights[i] * prod;
            }
            assert!((puf.tap_delay_difference(&c) - want).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn prop_soft_response_in_unit_interval(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let puf = FeedForwardPuf::random(16, 4, 10, &mut rng).unwrap();
            let c = Challenge::random(16, &mut rng);
            let p = puf.soft_response(&c, 0.1);
            prop_assert!((0.0..=1.0).contains(&p));
        }

        #[test]
        fn prop_zero_noise_soft_is_hard(seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let puf = FeedForwardPuf::random(16, 2, 9, &mut rng).unwrap();
            let c = Challenge::random(16, &mut rng);
            let s = puf.soft_response(&c, 0.0);
            prop_assert_eq!(s == 1.0, puf.response(&c));
        }
    }
}
