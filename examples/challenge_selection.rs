//! Model-based vs measurement-based stable-challenge selection.
//!
//! The paper's efficiency argument (§3): the measurement-based scheme of
//! its Ref. [1] works for one PUF but wastes enormous tester time on a wide
//! XOR PUF, because stable CRPs become exponentially rare and every
//! candidate must be measured (at every V/T corner, if robustness is
//! wanted). The model-assisted scheme measures a *fixed* 5,000-challenge
//! training set once per PUF and then predicts stability of never-measured
//! challenges for free.
//!
//! Run: `cargo run --release --example challenge_selection`

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use xorpuf::core::Condition;
use xorpuf::protocol::baselines::select_by_measurement;
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::server::Server;
use xorpuf::silicon::{Chip, ChipConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(11);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let n = 8;
    let want = 100; // authentication challenges to stockpile
    let evals = 100_000;
    let grid = Condition::paper_grid();

    // --- Baseline: measurement-based selection at all nine corners -------
    let t0 = Instant::now();
    let (picks, cost) = select_by_measurement(&chip, n, want, &grid, evals, 2_000_000, &mut rng)?;
    let baseline_time = t0.elapsed();
    println!("measurement-based selection (Ref. [1]) for an {n}-XOR PUF across 9 conditions:");
    println!("  tested {} random challenges", cost.challenges_tested);
    println!(
        "  spent {} counter measurements ({:.0} per kept challenge)",
        cost.measurements,
        cost.measurements_per_selected()
    );
    println!("  kept {} challenges in {baseline_time:.2?}\n", picks.len());

    // --- Proposed: model-assisted selection ------------------------------
    let t0 = Instant::now();
    let config = EnrollmentConfig::paper_all_conditions(n);
    let measurements_used = config.n
        * (config.training_size + config.validation_size * config.validation_conditions.len());
    let record = enroll(&chip, &config, &mut rng)?;
    let mut server = Server::new();
    server.register(record);
    let selected = server.select_challenges(0, want, 50_000_000, &mut rng)?;
    let model_time = t0.elapsed();
    println!("model-assisted selection (this paper):");
    println!(
        "  spent at most {measurements_used} counter measurements (training + validation, once)"
    );
    println!("  kept {} challenges in {model_time:.2?}", selected.len());
    println!("  marginal cost of the next challenge: zero measurements (pure prediction)\n");

    // --- Verify both selections at the worst corner ----------------------
    let corner = Condition::new(0.8, 60.0);
    let verify = |label: &str, picks: &[xorpuf::protocol::SelectedChallenge], rng: &mut StdRng| {
        let mut flips = 0;
        for p in picks {
            let mut bit = false;
            for puf in 0..n {
                // Simulation oracle: the reference response at the corner.
                let soft = chip.ground_truth_soft(puf, &p.challenge, corner).unwrap();
                bit ^= soft >= 0.5;
            }
            if bit != p.expected {
                flips += 1;
            }
            let _ = rng;
        }
        println!(
            "{label}: {flips}/{} selected challenges flip at 0.8V/60°C",
            picks.len()
        );
    };
    verify("measurement-based", &picks, &mut rng);
    verify("model-assisted   ", &selected, &mut rng);
    Ok(())
}
