//! Deriving a device-bound secret key from the XOR PUF with a code-offset
//! fuzzy extractor — the second classic PUF application (the paper's
//! Ref. [8] is titled "... for Device Authentication and Secret Key
//! Generation").
//!
//! The punchline: with the paper's model-assisted stable-challenge
//! selection, the response source is so reliable that a 3-way repetition
//! code reconstructs a 128-bit key perfectly even at a harsh V/T corner;
//! with unscreened random challenges the same code collapses.
//!
//! Run: `cargo run --release --example key_generation`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::Condition;
use xorpuf::protocol::auth::{ChipResponder, Responder};
use xorpuf::protocol::baselines::classic_enroll;
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::keygen::{enroll_key, reconstruct_key, KeyGenConfig};
use xorpuf::protocol::server::Server;
use xorpuf::silicon::{Chip, ChipConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(31);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let n = 4;
    let config = KeyGenConfig::stable_default(); // 128-bit key, 3× repetition
    println!(
        "deriving a {}-bit key from {} response bits ({}-input XOR PUF)\n",
        config.key_bits,
        config.response_bits(),
        n
    );

    // --- Proposed: key from model-selected stable challenges --------------
    let record = enroll(&chip, &EnrollmentConfig::paper_all_conditions(n), &mut rng)?;
    let mut server = Server::new();
    server.register(record);
    let selected = server.select_challenges(0, config.response_bits(), 500_000_000, &mut rng)?;
    let (key, helper) = enroll_key(&selected, config, &mut rng)?;
    println!("enrolled {key:?}");

    for cond in [
        Condition::NOMINAL,
        Condition::new(0.8, 60.0),
        Condition::new(1.0, 0.0),
    ] {
        let mut client = ChipResponder::new(&chip, n, cond, 7);
        let responses = client.respond(&helper.challenges);
        match reconstruct_key(&responses, &helper) {
            Ok(k) => println!(
                "  reconstruction at {cond}: OK ({})",
                if k == key { "matches" } else { "MISMATCH" }
            ),
            Err(e) => println!("  reconstruction at {cond}: FAILED ({e})"),
        }
    }

    // --- Baseline: key from unscreened random challenges ------------------
    println!("\nbaseline: same fuzzy extractor over unscreened random challenges");
    let picks = classic_enroll(
        &chip,
        n,
        config.response_bits(),
        Condition::NOMINAL,
        100_000,
        &mut rng,
    )?;
    let (baseline_key, baseline_helper) = enroll_key(&picks, config, &mut rng)?;
    let mut failures = 0;
    let trials = 10;
    for t in 0..trials {
        let mut client = ChipResponder::new(&chip, n, Condition::new(0.8, 60.0), 100 + t);
        let responses = client.respond(&baseline_helper.challenges);
        match reconstruct_key(&responses, &baseline_helper) {
            Ok(k) if k == baseline_key => {}
            _ => failures += 1,
        }
    }
    println!(
        "  corner reconstruction failed {failures}/{trials} times — unscreened {n}-XOR responses"
    );
    println!("  overwhelm a 3× repetition code; stable-challenge selection is what makes");
    println!("  lightweight key derivation possible.");
    Ok(())
}
