//! A multi-chip authentication server: enrollment of a whole lot, genuine
//! logins, swapped-chip rejections, and policy comparison.
//!
//! Run: `cargo run --release --example authentication_server`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::Condition;
use xorpuf::protocol::auth::{AuthPolicy, ChipResponder};
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::server::Server;
use xorpuf::silicon::{ChipConfig, ChipLot};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(21);
    let n = 6;
    let chips = 4;
    let rounds = 16; // authentication challenges per login

    // Fabricate and enroll a lot, then deploy every chip.
    let mut lot = ChipLot::fabricate(chips, &ChipConfig::paper_default(), 99);
    let mut server = Server::new();
    let config = EnrollmentConfig::paper_default(n);
    for chip in lot.chips() {
        let record = enroll(chip, &config, &mut rng)?;
        server.register(record);
    }
    for chip in lot.chips_mut() {
        chip.blow_fuses();
    }
    println!("enrolled and deployed {chips} chips ({n}-input XOR, zero-HD policy)\n");

    // Every genuine chip logs in; every chip presented under another chip's
    // identity is rejected (uniqueness: different dies disagree on ~50 % of
    // responses).
    for claimed in 0..chips as u32 {
        for actual in 0..chips as u32 {
            let chip = &lot.chips()[actual as usize];
            let mut client = ChipResponder::new(chip, n, Condition::NOMINAL, 1000 + actual as u64);
            let outcome = server.authenticate(
                claimed,
                &mut client,
                rounds,
                AuthPolicy::ZeroHammingDistance,
                &mut rng,
            )?;
            let expected = claimed == actual;
            print!(
                "claimed chip {claimed}, presented chip {actual}: {}{}",
                outcome,
                if outcome.approved == expected {
                    ""
                } else {
                    "  <-- POLICY FAILURE"
                },
            );
            println!();
            assert_eq!(outcome.approved, expected, "authentication matrix broken");
        }
    }

    // Policy comparison: the classic relaxed-Hamming policy would admit a
    // mediocre impostor that the zero-HD policy rejects.
    println!("\npolicy comparison for a 25%-error impostor over {rounds} challenges:");
    struct NoisyClone<'a> {
        inner: ChipResponder<'a>,
        rng: StdRng,
    }
    impl xorpuf::protocol::Responder for NoisyClone<'_> {
        fn respond(&mut self, challenges: &[xorpuf::core::Challenge]) -> Vec<bool> {
            use rand::Rng;
            self.inner
                .respond(challenges)
                .into_iter()
                .map(|b| b ^ (self.rng.gen::<f64>() < 0.25))
                .collect()
        }
    }
    let chip = &lot.chips()[0];
    for policy in [
        AuthPolicy::ZeroHammingDistance,
        AuthPolicy::MaxHammingFraction(0.3),
    ] {
        let mut impostor = NoisyClone {
            inner: ChipResponder::new(chip, n, Condition::NOMINAL, 5),
            rng: StdRng::seed_from_u64(6),
        };
        let outcome = server.authenticate(0, &mut impostor, rounds, policy, &mut rng)?;
        println!("  {policy}: {outcome}");
    }
    println!("\nthe zero-HD policy is only usable because every selected CRP is deeply stable —");
    println!(
        "the genuine chip never mismatches, so there is no error budget to donate to impostors."
    );
    Ok(())
}
