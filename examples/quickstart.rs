//! Quickstart: fabricate a simulated 32 nm XOR PUF chip, enroll it with the
//! model-assisted scheme, deploy it (blow the fuses) and authenticate it.
//!
//! Run: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::Condition;
use xorpuf::protocol::auth::{AuthPolicy, ChipResponder, RandomResponder};
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::server::Server;
use xorpuf::silicon::{Chip, ChipConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. Fabricate a chip: a bank of 32-stage arbiter PUFs with process
    //    variation, thermal noise and V/T sensitivities.
    let mut chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    println!(
        "fabricated chip {}: {} stages, {} PUFs",
        chip.id(),
        chip.stages(),
        chip.bank_size()
    );

    // 2. Enrollment: measure soft responses of 5,000 training challenges per
    //    member PUF through the fuse port, fit a linear delay model each,
    //    derive thresholds and β tightening.
    let n = 4; // XOR width
               // β fitting against all nine V/T corners (§5.2), so the selected
               // challenges stay stable even at 0.8 V / 60 °C.
    let config = EnrollmentConfig::paper_all_conditions(n);
    let record = enroll(&chip, &config, &mut rng)?;
    for (i, puf) in record.pufs.iter().enumerate() {
        println!("  PUF {i}: {} with {}", puf.thresholds, puf.betas);
    }

    // 3. Deploy: blow the fuses — from now on only the XOR output exists.
    chip.blow_fuses();
    assert!(!chip.fuses_intact());

    // 4. Register with the server and authenticate.
    let mut server = Server::new();
    server.register(record);

    let mut genuine = ChipResponder::new(&chip, n, Condition::NOMINAL, 7);
    let outcome = server.authenticate(
        0,
        &mut genuine,
        64,
        AuthPolicy::ZeroHammingDistance,
        &mut rng,
    )?;
    println!("genuine chip:   {outcome}");
    assert!(outcome.approved);

    // An impostor answering randomly is rejected with overwhelming
    // probability (2^-64 chance of guessing all bits).
    let mut impostor = RandomResponder::new(8);
    let outcome = server.authenticate(
        0,
        &mut impostor,
        64,
        AuthPolicy::ZeroHammingDistance,
        &mut rng,
    )?;
    println!("random impostor: {outcome}");
    assert!(!outcome.approved);

    // The genuine chip still authenticates at a harsh V/T corner, because
    // the selected challenges are deeply stable.
    let mut corner_client = ChipResponder::new(&chip, n, Condition::new(0.8, 60.0), 9);
    let outcome = server.authenticate(
        0,
        &mut corner_client,
        64,
        AuthPolicy::ZeroHammingDistance,
        &mut rng,
    )?;
    println!("genuine @ 0.8V/60°C: {outcome}");

    Ok(())
}
