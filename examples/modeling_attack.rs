//! A modeling attacker's view: clone a PUF from observed CRPs.
//!
//! Reproduces the paper's security narrative at example scale:
//!
//! 1. a single arbiter PUF falls to plain logistic regression within
//!    seconds (Refs. [2-5]);
//! 2. a narrow XOR PUF (n = 4) falls to the 35-25-25 MLP + L-BFGS attack;
//! 3. the same budget leaves a wide XOR PUF (n = 10) near coin-flip
//!    accuracy — the paper's "at least 10 PUFs" conclusion;
//! 4. the trained clone is then pointed at the real authentication server,
//!    translating model accuracy into break-in probability.
//!
//! Run: `cargo run --release --example modeling_attack`

use rand::rngs::StdRng;
use rand::SeedableRng;
use xorpuf::core::challenge::random_challenges;
use xorpuf::core::Condition;
use xorpuf::ml::features::{design_matrix, encode_bits};
use xorpuf::ml::logreg::{LogisticConfig, LogisticRegression};
use xorpuf::ml::{Mlp, MlpConfig};
use xorpuf::protocol::auth::{AuthPolicy, ModelResponder};
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::server::Server;
use xorpuf::silicon::testbench::{collect_stable_xor_crps, collect_xor_crps};
use xorpuf::silicon::{Chip, ChipConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let chip = Chip::fabricate(0, &ChipConfig::paper_default(), &mut rng);
    let evals = 100_000;

    // --- 1. Single arbiter PUF vs logistic regression --------------------
    let pool = random_challenges(chip.stages(), 6_000, &mut rng);
    let crps = collect_xor_crps(&chip, 1, &pool, Condition::NOMINAL, &mut rng)?;
    let (train, test) = crps.split_at_fraction(0.9);
    let (model, _) = LogisticRegression::fit_challenges(
        train.challenges(),
        train.responses(),
        &LogisticConfig::default(),
    );
    let acc = model.accuracy(test.challenges(), test.responses());
    println!(
        "single PUF, logistic regression, {} CRPs: {:.1}% accuracy",
        train.len(),
        acc * 100.0
    );

    // --- 2 & 3. XOR PUFs vs the MLP attack -------------------------------
    let pool = random_challenges(chip.stages(), 60_000, &mut rng);
    let (attack_pool, holdout) = pool.split_at(54_000);
    let mut clone_for_auth = None;
    for n in [4usize, 10] {
        // The paper's protocol: train and test on 100 %-stable CRPs only.
        let train =
            collect_stable_xor_crps(&chip, n, attack_pool, Condition::NOMINAL, evals, &mut rng)?;
        let test = collect_stable_xor_crps(&chip, n, holdout, Condition::NOMINAL, evals, &mut rng)?;
        let x = design_matrix(train.challenges());
        let y = encode_bits(train.responses());
        let config = MlpConfig::paper_default();
        let mut mlp = xorpuf::ml::Mlp::new(x.cols(), &config, &mut rng);
        mlp.train(&x, &y, &config);
        let predictions = mlp.predict(&design_matrix(test.challenges()));
        let acc = xorpuf::ml::accuracy(&predictions, test.responses());
        println!(
            "{n:2}-XOR PUF, MLP 35-25-25 + L-BFGS, {} stable CRPs: {:.1}% accuracy",
            train.len(),
            acc * 100.0
        );
        if n == 4 {
            clone_for_auth = Some(mlp);
        }
    }

    // --- 4. Point the n = 4 clone at the authentication server -----------
    let n = 4;
    let record = enroll(&chip, &EnrollmentConfig::paper_default(n), &mut rng)?;
    let mut server = Server::new();
    server.register(record);
    let clone: Mlp = clone_for_auth.expect("n = 4 clone was trained");
    let mut impostor = ModelResponder::new(|c: &xorpuf::core::Challenge| {
        let x = design_matrix(std::slice::from_ref(c));
        clone.predict(&x)[0]
    });
    let mut wins = 0;
    let rounds = 20;
    for _ in 0..rounds {
        let outcome = server.authenticate(
            0,
            &mut impostor,
            32,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )?;
        if outcome.approved {
            wins += 1;
        }
    }
    println!(
        "clone of the 4-XOR PUF vs zero-HD authentication (32 challenges): {wins}/{rounds} rounds approved"
    );
    println!(
        "(a >90%-accurate clone still needs all 32 bits right — but succeeds within a few tries;"
    );
    println!(" the defense is keeping model accuracy at ~50%, i.e. n ≥ 10)");
    Ok(())
}
