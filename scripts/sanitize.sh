#!/usr/bin/env bash
# Best-effort dynamic verification of the one unsafe region in the workspace
# (bench::par) plus the exhaustive interleaving model:
#
#   1. Miri over the puf-bench unit tests — UB + leak detection for the
#      MaybeUninit claim/write/ledger protocol, including the should_panic
#      leak test (`panicking_f_propagates_and_leaks_nothing`).
#   2. ThreadSanitizer over the same tests — data-race detection on the
#      real multi-threaded path.
#   3. The deep model-checker configurations behind `--cfg puf_model_check`
#      (pure safe Rust, always runnable).
#
# Miri and TSan need a nightly toolchain with the `miri` and `rust-src`
# components. Neither is guaranteed in this container, so each step probes
# for its prerequisites and SKIPS with a clear message instead of failing:
# the deterministic fallback for the same invariants is `cargo test -p
# puf-bench` (drop-ledger accounting tests) plus the model checker, which
# always run. scripts/check.sh stays the authoritative gate.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0
ran_any=0

have_nightly() {
    rustup toolchain list 2>/dev/null | grep -q nightly
}

echo "==> probe: nightly toolchain"
if ! command -v rustup >/dev/null 2>&1 || ! have_nightly; then
    echo "    SKIP: no nightly toolchain installed (rustup toolchain install nightly)"
else
    echo "    found: $(rustup run nightly rustc --version 2>/dev/null || echo '?')"

    echo "==> miri: cargo +nightly miri test -p puf-bench --lib"
    if rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^miri.*(installed)'; then
        # Miri provides no real threads beyond what it interprets; keep the
        # worker counts from the tests as-is (they use explicit workers).
        if MIRIFLAGS="-Zmiri-strict-provenance" \
                cargo +nightly miri test -p puf-bench --lib par; then
            echo "    miri: PASS (no UB, no leaks under panic)"
            ran_any=1
        else
            echo "    miri: FAIL"
            status=1
        fi
    else
        echo "    SKIP: miri component not installed" \
             "(rustup component add miri --toolchain nightly)"
    fi

    echo "==> tsan: RUSTFLAGS=-Zsanitizer=thread cargo +nightly test -p puf-bench --lib par"
    if rustup component list --toolchain nightly 2>/dev/null \
            | grep -q '^rust-src.*(installed)'; then
        host=$(rustup run nightly rustc -vV | sed -n 's/^host: //p')
        # -Z build-std: TSan must instrument std too, or every std sync
        # primitive looks like a race.
        if RUSTFLAGS="-Zsanitizer=thread" \
                cargo +nightly test -p puf-bench --lib par \
                -Z build-std --target "$host"; then
            echo "    tsan: PASS (no data races)"
            ran_any=1
        else
            echo "    tsan: FAIL"
            status=1
        fi
    else
        echo "    SKIP: rust-src component not installed" \
             "(rustup component add rust-src --toolchain nightly)"
    fi
fi

echo "==> model check: exhaustive interleavings of the par claim protocol"
if RUSTFLAGS="--cfg puf_model_check" cargo test -p puf-bench --lib par_model -q; then
    echo "    model: PASS"
    ran_any=1
else
    echo "    model: FAIL"
    status=1
fi

if [ "$status" -ne 0 ]; then
    echo "==> sanitize: FAILURES above"
elif [ "$ran_any" -eq 0 ]; then
    echo "==> sanitize: nothing ran (all steps skipped)"
    status=1
else
    echo "==> sanitize: all runnable steps passed"
fi
exit "$status"
