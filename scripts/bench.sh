#!/usr/bin/env bash
# Throughput benchmarks: builds the workspace in release mode and runs the
# bench harnesses — bench_eval times the scalar and batched PUF evaluation
# paths (results/BENCH_eval.json); bench_ml times the naive vs fused ML
# attack-training kernels and the linreg normal-equation paths
# (results/BENCH_ml.json); trillion replays the paper-scale measurement
# campaign through the bit-sliced engine and asserts the packed-vs-batched
# speedup gate (results/BENCH_trillion.json); server drives the fleet-scale
# authentication service — 1M enrolled chips, 1M batched sessions — and
# asserts the batched-vs-sequential speedup gate (results/BENCH_server.json);
# soak drives the fleet through a simulated service decade — aging, corner
# walks, pool depletion, re-enrollment, crash/recovery — against the durable
# chip store (results/BENCH_soak.json).
#
# After the harnesses run, `cargo xtask bench-diff` compares the fresh
# numbers against the previously committed baselines (snapshotted to
# target/bench_baseline/ before the run), prints the per-metric delta
# table, and fails on regressions past the observatory thresholds.
#
# Environment:
#   PUF_BENCH_CRPS=N   challenge-pool size (default 262144 eval / 8192 ml)
#   PUF_THREADS=N      worker threads for the multi-thread fan-out
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> snapshot committed baselines to target/bench_baseline/"
mkdir -p target/bench_baseline
cp results/BENCH_*.json results/CHAOS.json target/bench_baseline/ 2>/dev/null || true

echo "==> cargo build --release -p puf-bench --bin bench_eval --bin bench_ml --bin trillion --bin server --bin soak"
cargo build --release -p puf-bench --bin bench_eval --bin bench_ml --bin trillion --bin server --bin soak

echo "==> bench_eval (writes results/BENCH_eval.json)"
./target/release/bench_eval

echo "==> bench_ml (writes results/BENCH_ml.json)"
./target/release/bench_ml

echo "==> trillion (writes results/BENCH_trillion.json; asserts the >=4x packed gate)"
./target/release/trillion

echo "==> server (writes results/BENCH_server.json; asserts the >=3x batched gate)"
./target/release/server

echo "==> soak (writes results/BENCH_soak.json; checkpointed decade-soak lifecycle)"
./target/release/soak

echo "==> bench-diff observatory: fresh run vs committed baselines"
cargo xtask bench-diff --baseline target/bench_baseline --current results
