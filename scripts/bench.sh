#!/usr/bin/env bash
# Evaluation-throughput benchmark: builds the workspace in release mode and
# runs the bench_eval harness, which times the scalar and batched PUF
# evaluation paths and writes results/BENCH_eval.json.
#
# Environment:
#   PUF_BENCH_CRPS=N   challenge-pool size (default 262144)
#   PUF_THREADS=N      worker threads for the multi-thread fan-out
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p puf-bench --bin bench_eval"
cargo build --release -p puf-bench --bin bench_eval

echo "==> bench_eval (writes results/BENCH_eval.json)"
./target/release/bench_eval
