#!/usr/bin/env bash
# Full local gate: repo lint, formatting, clippy, and the tier-1 verify from
# ROADMAP.md. Run from anywhere; everything executes at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo xtask lint (repo-specific rules L0-L5, see DESIGN.md)"
cargo xtask lint

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> chaos smoke: bounded fault-injection sweep (FAR/FRR envelopes)"
cargo run -q --release -p puf-bench --bin chaos -- --smoke

echo "==> all checks passed"
