#!/usr/bin/env bash
# Full local gate: repo lint, formatting, clippy, and the tier-1 verify from
# ROADMAP.md. Run from anywhere; everything executes at the repository root.
#
#   scripts/check.sh          the standard gate
#   scripts/check.sh --full   additionally runs scripts/sanitize.sh
#                             (miri/tsan/model-check over the unsafe region)
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
if [ "${1:-}" = "--full" ]; then
    full=1
fi

echo "==> cargo xtask lint (repo-specific rules L0-L9, see DESIGN.md)"
# Gated against the committed baseline: any new violation, and any *growth*
# in per-rule suppression counts (exemption creep), fails the build. The
# machine-readable report lands in target/LINT.json for tooling.
cargo xtask lint --report target/LINT.json --baseline results/LINT_baseline.json

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> chaos smoke: bounded fault-injection sweep (FAR/FRR envelopes)"
cargo run -q --release -p puf-bench --bin chaos -- --smoke

echo "==> trace gate: deterministic tick trace from chaos --smoke, validated + byte-stable"
cargo run -q --release -p puf-bench --bin chaos -- --smoke --trace=target/CHAOS_trace.json
cargo run -q --release -p puf-bench --bin chaos -- --smoke --trace=target/CHAOS_trace.rerun.json
cmp target/CHAOS_trace.json target/CHAOS_trace.rerun.json
cmp target/CHAOS_trace.json.folded target/CHAOS_trace.rerun.json.folded
cargo xtask trace-check target/CHAOS_trace.json

echo "==> trillion smoke: bit-sliced replay harness end-to-end (tiny dims, no gate)"
cargo run -q --release -p puf-bench --bin trillion -- --smoke

echo "==> server smoke: fleet auth service, 100k chips; asserts the >=3x batched gate"
cargo run -q --release -p puf-bench --bin server -- --smoke

echo "==> soak smoke: decade-soak lifecycle harness; byte-identical re-run + crash/recover"
# Two fresh runs must emit byte-identical JSON (the durable store, pool
# accounting, and crash/recover cycles are all deterministic per seed)...
cargo run -q --release -p puf-bench --bin soak -- --smoke --fresh --out target/BENCH_soak_smoke.json
cargo run -q --release -p puf-bench --bin soak -- --smoke --fresh --out target/BENCH_soak_smoke.rerun.json
cmp target/BENCH_soak_smoke.json target/BENCH_soak_smoke.rerun.json
# ...and a soak killed mid-run must resume from its checkpoint to the same
# bytes as an uninterrupted run (clean crash/recover cycles are asserted
# bit-identical inside the harness itself).
SOAK_STOP_AFTER=2 cargo run -q --release -p puf-bench --bin soak -- --smoke --fresh --out target/BENCH_soak_smoke.resume.json
cargo run -q --release -p puf-bench --bin soak -- --smoke --out target/BENCH_soak_smoke.resume.json
cmp target/BENCH_soak_smoke.json target/BENCH_soak_smoke.resume.json

echo "==> bench-diff observatory: committed baselines parse and self-compare clean"
cargo xtask bench-diff --baseline results --current results

if [ "$full" -eq 1 ]; then
    echo "==> --full: scripts/sanitize.sh (miri / tsan / model check)"
    scripts/sanitize.sh
fi

echo "==> all checks passed"
