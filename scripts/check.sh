#!/usr/bin/env bash
# Full local gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# Run from anywhere; everything executes at the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run

echo "==> all checks passed"
