//! Slice sampling helpers (shim for `rand::seq`).

use crate::Rng;

/// Random operations on slices (mirrors `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform random reference to one element, or `None` when empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(2);
        let items = [0usize, 1, 2, 3];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements left in order after shuffle");
    }
}
