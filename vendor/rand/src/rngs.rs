//! Named RNG implementations (shim for `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic RNG — xoshiro256++.
///
/// **Not** stream-compatible with upstream `rand`'s ChaCha12-based `StdRng`;
/// only the API and the determinism guarantee match. xoshiro256++ passes
/// BigCrush and is more than adequate for simulation workloads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
        assert_ne!(a, b);
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
