//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no crates-io access, so the real `rand` crate
//! cannot be fetched; the workspace patches `rand` to this implementation.
//! It provides [`RngCore`], [`Rng`], [`SeedableRng`], [`rngs::StdRng`]
//! (xoshiro256++ rather than ChaCha12 — deterministic per seed, but *not*
//! stream-compatible with upstream `rand`) and [`seq::SliceRandom`].
//!
//! Everything is deterministic given a seed; there is no OS entropy source.

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an [`RngCore`] — stands in for
/// `Standard: Distribution<T>` in real `rand`.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches upstream's
    /// `Standard` distribution for `f64` in distribution, not in stream).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (((u128::from(rng.next_u64()) * span) >> 64) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (((u128::from(rng.next_u64()) * span) >> 64) as $t)
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (start as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as StandardSample>::sample_standard(rng);
                start + (end - start) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed deterministically from a seed (mirrors
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG by expanding a `u64` with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0u32; 8];
        for _ in 0..80_000 {
            hits[rng.gen_range(0usize..8)] += 1;
        }
        for &h in &hits {
            assert!((8_000..12_000).contains(&h), "skewed bucket: {hits:?}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn unsized_rng_references_work() {
        fn takes_unsized<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = takes_unsized(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
