//! Test-run configuration and the RNG used by strategies.

use rand::SeedableRng;

/// The RNG handed to [`crate::strategy::Strategy::sample`].
pub type TestRng = rand::rngs::StdRng;

/// Per-test configuration (mirrors the used subset of
/// `proptest::test_runner::Config`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled inputs per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256: without shrinking, raw case
    /// count is the only cost knob, and these suites run in CI on every PR.
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A deterministic RNG derived from the test's name (FNV-1a), so every test
/// sees a stable but distinct stream across runs.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn distinct_tests_get_distinct_streams() {
        let mut a = rng_for_test("alpha");
        let mut b = rng_for_test("beta");
        let mut a2 = rng_for_test("alpha");
        assert_eq!(a.next_u64(), a2.next_u64());
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
