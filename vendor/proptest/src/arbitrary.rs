//! `any::<T>()` — strategies for types with a canonical distribution.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "arbitrary value" distribution (stands in for
/// `proptest::arbitrary::Arbitrary`).
pub trait ArbitraryValue {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_via_gen!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

impl ArbitraryValue for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.gen())
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn any_is_usable_for_all_advertised_types() {
        let mut rng = rng_for_test("any");
        let _: u8 = any().sample(&mut rng);
        let _: u128 = any().sample(&mut rng);
        let _: bool = any().sample(&mut rng);
        let idx: crate::sample::Index = any().sample(&mut rng);
        assert!(idx.index(10) < 10);
    }
}
