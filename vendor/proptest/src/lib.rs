//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! The build environment has no crates-io access; the workspace patches
//! `proptest` to this implementation. Semantics: each `proptest!` test runs
//! its body for [`test_runner::ProptestConfig::cases`] randomly sampled
//! inputs from the given strategies, with a seed derived deterministically
//! from the test's name. There is **no shrinking** — a failing case panics
//! with the sampled inputs' debug representation via the normal assertion
//! message instead.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-importable surface (mirrors `proptest::prelude`).
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: every `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for each of `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name (no shrinking machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_samples(x in 0usize..10, y in any::<u64>()) {
            prop_assert!(x < 10);
            let _ = y;
        }
    }

    proptest! {
        #[test]
        fn default_config_macro_form(bits in any::<u128>()) {
            prop_assert_eq!(bits, bits);
        }
    }

    #[test]
    fn composite_strategies_sample() {
        let mut rng = crate::test_runner::rng_for_test("composite");
        let strat = (1usize..=4, any::<u32>()).prop_flat_map(|(n, tag)| {
            crate::collection::vec(-1.0f64..1.0, n).prop_map(move |v| (tag, v))
        });
        for _ in 0..100 {
            let (_, v) = Strategy::sample(&strat, &mut rng);
            assert!((1..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }
    }
}
