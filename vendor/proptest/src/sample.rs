//! Sampling helper types (mirrors `proptest::sample`).

/// A position into a collection of not-yet-known length.
///
/// Sampled via `any::<Index>()`; resolved against a concrete length with
/// [`Index::index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    /// Wraps a raw draw (used by `any::<Index>()`).
    pub(crate) fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Resolves to a position in `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        (self.0 % len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_resolves_in_bounds() {
        for raw in [0u64, 1, 41, u64::MAX] {
            assert!(Index::new(raw).index(7) < 7);
        }
        assert_eq!(Index::new(9).index(1), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn index_rejects_empty() {
        let _ = Index::new(3).index(0);
    }
}
