//! The [`Strategy`] trait and combinators (sampling only, no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A source of random values of an associated type.
///
/// Unlike real proptest there is no value tree: `sample` draws a fresh
/// random value each call and failures are reported un-shrunk.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from every sampled value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Copy, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields clones of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = rng_for_test("ranges");
        for _ in 0..1_000 {
            let a = (1usize..=16).sample(&mut rng);
            assert!((1..=16).contains(&a));
            let b = (-10.0f64..10.0).sample(&mut rng);
            assert!((-10.0..10.0).contains(&b));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = rng_for_test("map");
        let s = (0u32..4).prop_map(|x| x * 10);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 10, 0);
        }
        assert_eq!(Just(7u8).sample(&mut rng), 7);
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = rng_for_test("tuples");
        let (a, b, c) = (0usize..3, 10usize..13, -1.0f64..1.0).sample(&mut rng);
        assert!(a < 3);
        assert!((10..13).contains(&b));
        assert!((-1.0..1.0).contains(&c));
    }
}
