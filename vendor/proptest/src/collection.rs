//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: an exact length or a range.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `element` and whose length
/// comes from `size` (a `usize`, `Range<usize>` or `RangeInclusive<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;
    use crate::test_runner::rng_for_test;

    #[test]
    fn exact_length() {
        let mut rng = rng_for_test("vec_exact");
        let v = vec(any::<u8>(), 17).sample(&mut rng);
        assert_eq!(v.len(), 17);
    }

    #[test]
    fn ranged_length() {
        let mut rng = rng_for_test("vec_range");
        for _ in 0..200 {
            let v = vec(any::<u8>(), 0..512).sample(&mut rng);
            assert!(v.len() < 512);
        }
    }
}
