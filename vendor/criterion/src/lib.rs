//! Offline shim for the subset of `criterion` 0.5 this workspace uses.
//!
//! The build environment has no crates-io access; the workspace patches
//! `criterion` to this implementation. Measurement model: per benchmark,
//! calibrate an iteration count targeting ~25 ms per sample, take
//! `sample_size` samples, and report the median ns/iter (plus throughput
//! when configured). No plots, no statistics beyond median/min/max, no
//! baseline storage — numbers go to stdout and are meant to be pasted into
//! EXPERIMENTS.md.
//!
//! Filtering works like upstream: `cargo bench -- <substring>` runs only
//! benchmark ids containing the substring.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measurement sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);
/// Iteration-count calibration floor.
const CALIBRATION_TIME: Duration = Duration::from_millis(5);

/// Throughput annotation for a benchmark (elements or bytes per iteration).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup cost; the shim runs one routine call
/// per setup call regardless, so this is advisory.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `BenchmarkId::new("n", 4)` → `n/4`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group name already scopes the id), e.g.
    /// `BenchmarkId::from_parameter(5000)` → `5000`.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a flat benchmark-id string.
pub trait IntoBenchmarkId {
    /// The flat id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The per-benchmark timing driver passed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median nanoseconds per iteration over all samples.
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            ..Self::default()
        }
    }

    /// Times `routine` in a calibrated loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill CALIBRATION_TIME?
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION_TIME || iters >= u64::MAX / 2 {
                let per_iter = elapsed.as_nanos().max(1) as u64 / iters;
                iters = (TARGET_SAMPLE_TIME.as_nanos() as u64 / per_iter.max(1)).max(1);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.record(samples);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with a handful of timed single calls.
        let mut per_iter = Duration::ZERO;
        let mut calibration = 0u32;
        while per_iter < CALIBRATION_TIME && calibration < 64 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            per_iter += start.elapsed();
            calibration += 1;
        }
        let per_iter_ns =
            (per_iter.as_nanos().max(1) as u64 / u64::from(calibration.max(1))).max(1);
        let iters = (TARGET_SAMPLE_TIME.as_nanos() as u64 / per_iter_ns).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            samples.push(total.as_nanos() as f64 / iters as f64);
        }
        self.record(samples);
    }

    fn record(&mut self, mut samples: Vec<f64>) {
        samples.sort_by(|a, b| a.total_cmp(b));
        self.median_ns = samples[samples.len() / 2];
        self.min_ns = samples[0];
        self.max_ns = samples[samples.len() - 1];
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_second: f64) -> String {
    if per_second >= 1e9 {
        format!("{:.2} G", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.2} M", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.2} K", per_second / 1e3)
    } else {
        format!("{per_second:.1} ")
    }
}

/// The benchmark harness entry point (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            sample_size: 12,
        }
    }
}

impl Criterion {
    /// Builds a harness from the process arguments: the first non-flag
    /// argument is a substring filter; harness flags are ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            filter,
            ..Self::default()
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: F,
    ) {
        if !self.matches(id) {
            return;
        }
        let mut bencher = Bencher::new(sample_size);
        f(&mut bencher);
        let mut line = format!(
            "{id:<52} {:>12}/iter  [{} .. {}]",
            format_ns(bencher.median_ns),
            format_ns(bencher.min_ns),
            format_ns(bencher.max_ns),
        );
        if let Some(tp) = throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 / (bencher.median_ns * 1e-9);
            line.push_str(&format!("  {}{unit}", format_rate(rate)));
        }
        println!("{line}");
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(id, None, sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: self.sample_size,
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample-size settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Upstream enforces >= 10; the shim just needs >= 1.
        self.sample_size = n.max(1);
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, f);
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id.into_id());
        let (tp, n) = (self.throughput, self.sample_size);
        self.criterion.run_one(&full, tp, n, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(2u64.wrapping_mul(3)));
        assert!(b.median_ns > 0.0);
        assert!(b.min_ns <= b.median_ns && b.median_ns <= b.max_ns);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(3);
        b.iter_batched(
            || 41u64,
            |x| std::hint::black_box(x + 1),
            BatchSize::SmallInput,
        );
        assert!(b.median_ns > 0.0);
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("eval".into()),
            sample_size: 3,
        };
        assert!(c.matches("xor/eval_batch"));
        assert!(!c.matches("train/lbfgs"));
        let open = Criterion::default();
        assert!(open.matches("anything"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("n", 4).into_id(), "n/4");
    }

    #[test]
    fn formatting_scales() {
        assert_eq!(format_ns(12.3), "12.30 ns");
        assert!(format_ns(4_500.0).ends_with("µs"));
        assert!(format_rate(2.5e6).starts_with("2.50 M"));
    }
}
