//! Offline marker shim for `serde`.
//!
//! Exists only so the workspace's *optional* `serde` dependency declarations
//! resolve without crates-io access. The puf-* crates gate every serde
//! derive behind their (disabled-by-default) `serde` cargo feature; enabling
//! that feature against this shim will fail to compile, because no derive
//! macros are provided. Restore the real `serde` in the workspace manifest
//! if serialization support is ever needed and the registry is reachable.

/// Placeholder trait; real serde's `Serialize` is a derive-backed trait.
pub trait Serialize {}

/// Placeholder trait; real serde's `Deserialize` carries a lifetime.
pub trait Deserialize<'de> {}
