//! Offline shim for the subset of `bytes` 1.x this workspace uses.
//!
//! The build environment has no crates-io access; the workspace patches
//! `bytes` to this implementation. [`Bytes`] is a `Vec<u8>` plus a read
//! cursor — no reference counting or zero-copy slicing, which the storage
//! codec does not need.

/// Read-side cursor operations (mirrors the used subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Whether any bytes are left to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out, advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u8`.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side operations (mirrors the used subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An owned, cursor-consumable byte buffer (shim for `bytes::Bytes`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data, pos: 0 }
    }
}

/// A growable byte buffer (shim for `bytes::BytesMut`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut out = BytesMut::with_capacity(32);
        out.put_slice(b"HDR");
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_f64_le(-0.5);
        let mut buf = out.freeze();
        assert_eq!(buf.remaining(), 3 + 2 + 4 + 8);
        let mut hdr = [0u8; 3];
        buf.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_f64_le(), -0.5);
        assert!(buf.is_empty());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut buf = Bytes::copy_from_slice(&[1u8]);
        let _ = buf.get_u32_le();
    }

    #[test]
    fn to_vec_reflects_cursor() {
        let mut buf = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        buf.advance(1);
        assert_eq!(buf.to_vec(), vec![2, 3, 4]);
        assert_eq!(buf.len(), 3);
        assert_eq!(&buf[..2], &[2, 3]);
    }
}
