//! `xorpuf` — command-line front end for the model-assisted XOR PUF
//! protocol.
//!
//! Chips are simulated and fully determined by `--chip-seed`, so "the same
//! physical chip" can be revisited across invocations without serialising
//! silicon state; the server database (delay parameters, thresholds, βs) is
//! persisted to a file with the `puf_protocol::storage` codec.
//!
//! ```text
//! xorpuf enroll      --chip-seed 7 --chip-id 0 --n 4 --db server.xpuf [--all-conditions]
//! xorpuf select      --db server.xpuf --chip-id 0 --count 16
//! xorpuf authenticate --db server.xpuf --chip-seed 7 --chip-id 0 [--vdd 0.8 --temp 60] [--impostor]
//! xorpuf keygen      --db server.xpuf --chip-seed 7 --chip-id 0 --bits 128
//! xorpuf inspect     --db server.xpuf
//! ```
//!
//! Every command additionally accepts `--telemetry[=PATH]`: with no value it
//! prints a metrics report (counters, latency histograms, gauges) to stdout
//! after the command runs; with a path it appends one JSONL record per
//! metric to that file instead. `--trace[=PATH]` works the same way for
//! structured trace events: with no value it prints folded flamegraph
//! stacks to stdout; with a path it writes Chrome trace-event JSON (open
//! in `chrome://tracing` or Perfetto) to PATH plus the folded stacks to
//! `PATH.folded`. Flags a command does not understand are rejected with an
//! error.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;
use xorpuf::core::Condition;
use xorpuf::protocol::auth::{AuthPolicy, ChipResponder, RandomResponder, Responder};
use xorpuf::protocol::enrollment::{enroll, EnrollmentConfig};
use xorpuf::protocol::keygen::{enroll_key, reconstruct_key, KeyGenConfig};
use xorpuf::protocol::server::Server;
use xorpuf::protocol::storage::{decode_server, encode_server};
use xorpuf::silicon::{Chip, ChipConfig};

/// Flags that take no value (`--telemetry=PATH` opts into one inline).
const VALUELESS_FLAGS: &[&str] = &["impostor", "all-conditions", "telemetry", "trace"];

/// The flags each command understands; anything else is an error.
fn allowed_flags(command: &str) -> Option<&'static [&'static str]> {
    Some(match command {
        "enroll" => &[
            "db",
            "chip-seed",
            "chip-id",
            "n",
            "seed",
            "all-conditions",
            "telemetry",
            "trace",
        ],
        "select" => &["db", "chip-id", "count", "seed", "telemetry", "trace"],
        "authenticate" => &[
            "db",
            "chip-seed",
            "chip-id",
            "count",
            "vdd",
            "temp",
            "seed",
            "impostor",
            "telemetry",
            "trace",
        ],
        "keygen" => &[
            "db",
            "chip-seed",
            "chip-id",
            "bits",
            "seed",
            "telemetry",
            "trace",
        ],
        "inspect" => &["db", "telemetry", "trace"],
        _ => return None,
    })
}

struct Args {
    flags: HashMap<String, String>,
}

impl Args {
    fn parse(args: &[String], allowed: &'static [&'static str]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument `{arg}`"));
            };
            // Both `--name value` and `--name=value` are accepted.
            let (name, inline) = match name.split_once('=') {
                Some((n, v)) => (n, Some(v.to_string())),
                None => (name, None),
            };
            if !allowed.contains(&name) {
                return Err(format!("unknown flag --{name}\n{USAGE}"));
            }
            let value = if let Some(inline) = inline {
                inline
            } else if VALUELESS_FLAGS.contains(&name) {
                String::new()
            } else {
                iter.next()
                    .ok_or_else(|| format!("--{name} requires a value"))?
                    .clone()
            };
            flags.insert(name.to_string(), value);
        }
        Ok(Self { flags })
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: `{v}` is not a valid value")),
        }
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

fn fabricate(seed: u64, id: u32) -> Chip {
    // Deterministic per (seed, id): every command sees the same silicon.
    let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(id) << 32));
    Chip::fabricate(id, &ChipConfig::paper_default(), &mut rng)
}

fn load_db(path: &str) -> Result<Server, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    decode_server(&bytes).map_err(|e| format!("cannot decode {path}: {e}"))
}

fn save_db(path: &str, server: &Server) -> Result<(), String> {
    std::fs::write(path, encode_server(server)).map_err(|e| format!("cannot write {path}: {e}"))
}

fn cmd_enroll(args: &Args) -> Result<(), String> {
    let chip_seed: u64 = args.get("chip-seed", 0)?;
    let chip_id: u32 = args.get("chip-id", 0)?;
    let n: usize = args.get("n", 4)?;
    let db = args.require("db")?;
    let chip = fabricate(chip_seed, chip_id);
    let config = if args.has("all-conditions") {
        EnrollmentConfig::paper_all_conditions(n)
    } else {
        EnrollmentConfig::paper_default(n)
    };
    let mut rng = StdRng::seed_from_u64(args.get("seed", 1)?);
    let record = enroll(&chip, &config, &mut rng).map_err(|e| e.to_string())?;
    let mut server = if std::path::Path::new(db).exists() {
        load_db(db)?
    } else {
        Server::new()
    };
    let replaced = server.register(record).is_some();
    save_db(db, &server)?;
    println!(
        "enrolled chip {chip_id} ({n}-input XOR, {}){} → {db}",
        if args.has("all-conditions") {
            "all-V/T βs"
        } else {
            "nominal βs"
        },
        if replaced {
            ", replacing a previous record"
        } else {
            ""
        },
    );
    Ok(())
}

fn cmd_select(args: &Args) -> Result<(), String> {
    let db = args.require("db")?;
    let chip_id: u32 = args.get("chip-id", 0)?;
    let count: usize = args.get("count", 16)?;
    let server = load_db(db)?;
    let mut rng = StdRng::seed_from_u64(args.get("seed", 2)?);
    let picks = server
        .select_challenges(
            chip_id,
            count,
            count.saturating_mul(500_000).max(1_000_000),
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
    println!("challenge                          expected");
    for p in &picks {
        println!("{:032x}  {}", p.challenge.bits(), u8::from(p.expected));
    }
    Ok(())
}

fn cmd_authenticate(args: &Args) -> Result<(), String> {
    let db = args.require("db")?;
    let chip_seed: u64 = args.get("chip-seed", 0)?;
    let chip_id: u32 = args.get("chip-id", 0)?;
    let count: usize = args.get("count", 32)?;
    let vdd: f64 = args.get("vdd", 0.9)?;
    let temp: f64 = args.get("temp", 25.0)?;
    let server = load_db(db)?;
    let record = server
        .record(chip_id)
        .ok_or_else(|| format!("chip {chip_id} is not enrolled in {db}"))?;
    let n = record.n();
    let cond = Condition::new(vdd, temp);
    let mut rng = StdRng::seed_from_u64(args.get("seed", 3)?);
    let outcome = if args.has("impostor") {
        let mut client = RandomResponder::new(99);
        server.authenticate(
            chip_id,
            &mut client,
            count,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
    } else {
        let chip = fabricate(chip_seed, chip_id);
        let mut client = ChipResponder::new(&chip, n, cond, 7);
        server.authenticate(
            chip_id,
            &mut client,
            count,
            AuthPolicy::ZeroHammingDistance,
            &mut rng,
        )
    }
    .map_err(|e| e.to_string())?;
    println!("chip {chip_id} at {cond}: {outcome}");
    if !outcome.approved {
        if args.has("impostor") {
            xorpuf::telemetry::counter!("protocol.auth.impostor_rejects").inc();
        }
        return Err("authentication denied".into());
    }
    Ok(())
}

fn cmd_keygen(args: &Args) -> Result<(), String> {
    let db = args.require("db")?;
    let chip_seed: u64 = args.get("chip-seed", 0)?;
    let chip_id: u32 = args.get("chip-id", 0)?;
    let bits: usize = args.get("bits", 128)?;
    let server = load_db(db)?;
    let record = server
        .record(chip_id)
        .ok_or_else(|| format!("chip {chip_id} is not enrolled in {db}"))?;
    let n = record.n();
    let config = KeyGenConfig::new(bits, 3);
    let mut rng = StdRng::seed_from_u64(args.get("seed", 4)?);
    let selected = server
        .select_challenges(chip_id, config.response_bits(), 500_000_000, &mut rng)
        .map_err(|e| e.to_string())?;
    let (key, helper) = enroll_key(&selected, config, &mut rng).map_err(|e| e.to_string())?;

    // Round-trip against the physical chip to prove the helper data works.
    let chip = fabricate(chip_seed, chip_id);
    let mut client = ChipResponder::new(&chip, n, Condition::NOMINAL, 8);
    let responses = client.respond(&helper.challenges);
    let rebuilt = reconstruct_key(&responses, &helper).map_err(|e| e.to_string())?;
    if rebuilt != key {
        return Err("reconstructed key mismatch".into());
    }
    let hex: String = key.to_bytes().iter().map(|b| format!("{b:02x}")).collect();
    println!("{bits}-bit key: {hex}");
    println!(
        "(reconstructed from {} one-shot responses through the helper data)",
        helper.challenges.len()
    );
    Ok(())
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let db = args.require("db")?;
    let server = load_db(db)?;
    let mut ids: Vec<u32> = server.chip_ids().collect();
    ids.sort_unstable();
    println!("{db}: {} enrolled chip(s)", ids.len());
    for id in ids {
        let record = server.record(id).expect("listed id");
        println!(
            "  chip {id}: {}-input XOR, {} stages, conservative {}",
            record.n(),
            record.stages,
            record.conservative_betas()
        );
    }
    Ok(())
}

const USAGE: &str = "usage: xorpuf <enroll|select|authenticate|keygen|inspect> [--flag value]...
  enroll       --db FILE [--chip-seed N] [--chip-id N] [--n N] [--all-conditions]
  select       --db FILE [--chip-id N] [--count N]
  authenticate --db FILE [--chip-seed N] [--chip-id N] [--count N] [--vdd V] [--temp C] [--impostor]
  keygen       --db FILE [--chip-seed N] [--chip-id N] [--bits N]
  inspect      --db FILE
every command also accepts --telemetry[=PATH]: print a metrics report to
stdout after the command, or append JSONL records to PATH instead; and
--trace[=PATH]: print folded flamegraph stacks to stdout, or write Chrome
trace-event JSON to PATH (plus folded stacks to PATH.folded)";

/// Writes the collected metrics: a human-readable table on stdout when
/// `sink` is empty, one JSONL record per metric appended to `sink`
/// otherwise.
fn emit_telemetry(sink: &str) -> Result<(), String> {
    use std::io::Write;
    let registry = xorpuf::telemetry::registry();
    if sink.is_empty() {
        print!("{}", registry.render_table());
        return Ok(());
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(sink)
        .map_err(|e| format!("cannot open {sink}: {e}"))?;
    file.write_all(registry.render_jsonl().as_bytes())
        .map_err(|e| format!("cannot write {sink}: {e}"))
}

/// Writes the recorded trace: folded flamegraph stacks on stdout when
/// `sink` is empty; otherwise Chrome trace-event JSON to `sink` and the
/// folded stacks next to it at `sink.folded`.
fn emit_trace(sink: &str) -> Result<(), String> {
    use xorpuf::telemetry::trace_export;
    let tracer = xorpuf::telemetry::tracer();
    let events = tracer.snapshot_events();
    let clock = tracer.clock();
    if tracer.evicted() > 0 {
        eprintln!(
            "warning: trace ring overflowed; {} oldest event(s) evicted",
            tracer.evicted()
        );
    }
    if sink.is_empty() {
        print!("{}", trace_export::folded_stacks(&events, clock));
        return Ok(());
    }
    std::fs::write(sink, trace_export::chrome_trace_json(&events, clock))
        .map_err(|e| format!("cannot write {sink}: {e}"))?;
    let folded_path = format!("{sink}.folded");
    std::fs::write(&folded_path, trace_export::folded_stacks(&events, clock))
        .map_err(|e| format!("cannot write {folded_path}: {e}"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let Some(allowed) = allowed_flags(command) else {
        eprintln!("error: unknown command `{command}`\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest, allowed).and_then(|args| {
        let telemetry_sink = args.flags.get("telemetry").cloned();
        if telemetry_sink.is_some() {
            xorpuf::telemetry::set_enabled(true);
        }
        let trace_sink = args.flags.get("trace").cloned();
        if trace_sink.is_some() {
            // Interactive runs profile real time; the deterministic tick
            // mode is for reproducible traces (chaos bench, tests).
            xorpuf::telemetry::tracer().set_clock(xorpuf::telemetry::TraceClock::Wall);
            xorpuf::telemetry::tracer().set_enabled(true);
        }
        let outcome = match command.as_str() {
            "enroll" => cmd_enroll(&args),
            "select" => cmd_select(&args),
            "authenticate" => cmd_authenticate(&args),
            "keygen" => cmd_keygen(&args),
            "inspect" => cmd_inspect(&args),
            other => unreachable!("allowed_flags admitted `{other}`"),
        };
        if let Some(sink) = telemetry_sink {
            // Report even when the command failed: the counters usually
            // explain the failure (e.g. rejects, exhausted selection).
            if let Err(e) = emit_telemetry(&sink) {
                eprintln!("warning: {e}");
            }
        }
        if let Some(sink) = trace_sink {
            if let Err(e) = emit_trace(&sink) {
                eprintln!("warning: {e}");
            }
        }
        outcome
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}
