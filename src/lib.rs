//! # xorpuf
//!
//! Umbrella crate for the reproduction of Zhou, Parhi and Kim, *"Secure and
//! Reliable XOR Arbiter PUF Design: An Experimental Study based on
//! 1 Trillion Challenge Response Pair Measurements"*, DAC 2017.
//!
//! Re-exports the member crates so downstream users (and the examples and
//! integration tests in this repository) can depend on one crate:
//!
//! - [`core`] — linear additive delay model, challenges, noise, V/T model.
//! - [`silicon`] — simulated 32 nm chips, counters, fuses, test bench.
//! - [`ml`] — from-scratch linear algebra, linear/logistic regression,
//!   multi-layer perceptron and L-BFGS.
//! - [`protocol`] — model-assisted enrollment, threshold adjustment and
//!   authentication, plus baseline schemes.
//! - [`analysis`] — histograms, stability statistics and exponential fits.
//! - [`telemetry`] — zero-dependency counters, gauges, latency histograms,
//!   spans and traces instrumenting the whole pipeline.
//!
//! ```
//! use xorpuf::core::{Challenge, XorPuf};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let puf = XorPuf::random(10, 32, &mut rng);
//! let c = Challenge::random(32, &mut rng);
//! let _bit = puf.response(&c);
//! ```

#![deny(unsafe_code)]

pub use puf_analysis as analysis;
pub use puf_core as core;
pub use puf_ml as ml;
pub use puf_protocol as protocol;
pub use puf_silicon as silicon;
pub use puf_telemetry as telemetry;
